//! The `Inquiry` builder: one configured refute→refine session.
//!
//! An inquiry wires every ingredient of the paper's workflow — a counter
//! source (live backend, recorded trace, or pre-built observations), one or
//! more model families, a worker-thread budget, a seed, and the optional
//! constraint-deduction and refinement-search stages — into a single value
//! whose [`run`](Inquiry::run) produces a serializable [`Report`].
//!
//! Determinism is a design invariant: the same inquiry produces a
//! byte-identical report JSON at every thread count (the collect campaign and
//! the verdict fan-out both schedule deterministically, and wall-clock timing
//! is excluded from serialization).

use crate::error::SessionError;
use crate::report::{
    EnumeratedGroup, EnumerationSummary, ModelConstraints, ModelVerdicts, ObservationSummary,
    Report, StageTimings, REPORT_FORMAT_VERSION,
};
use crate::verdict::Verdict;
use counterpoint_collect::{Campaign, CampaignCell, CounterBackend, SimBackend, Trace};
use counterpoint_core::{
    check_models_verdicts, deduce_constraints, essential_feature_intersection, CertificatePool,
    ConstraintSet, ExplorationModel, FeatureSet, LatticeSearch, ModelCone, Observation,
};
use counterpoint_haswell::mmu::MmuConfig;
use counterpoint_haswell::pmu::PmuConfig;
use counterpoint_models::enumo::{self, EnumOptions, ModelGrammar};
use counterpoint_models::harness::{case_study_campaign, HarnessConfig};
use counterpoint_telemetry as telemetry;
use std::fmt;
use std::time::Instant;

/// A type-erased campaign backend factory (one backend per cell, created on
/// the worker thread that picks the cell up).
type BackendFactory = Box<dyn Fn(&CampaignCell) -> Box<dyn CounterBackend> + Sync>;

/// Where an inquiry's observations come from.
enum Source {
    /// No source configured yet.
    Unset,
    /// Pre-built observations, used as-is.
    Observations(Vec<Observation>),
    /// A campaign run against a counter backend.
    Backend {
        campaign: Campaign,
        factory: BackendFactory,
    },
    /// A campaign replayed from a recorded trace.
    Replay { campaign: Campaign, trace: Trace },
    /// The standard Haswell case-study harness.
    Harness(HarnessConfig),
}

/// The optional refinement-search stage: a feature-lattice generator plus the
/// search's starting point.  The generator is `Sync` so the lattice-search
/// workers can call it concurrently.
struct Refinement {
    generator: Box<dyn Fn(&FeatureSet) -> ModelCone + Sync>,
    universe: Vec<String>,
    initial: FeatureSet,
}

/// A configured refute→refine session.
///
/// Build one with [`Inquiry::new`], wire in a source and models with the
/// builder methods, and call [`run`](Inquiry::run).  See the crate-level
/// documentation for a complete example.
pub struct Inquiry {
    source: Source,
    models: Vec<ExplorationModel>,
    threads: usize,
    search_threads: Option<usize>,
    seed: Option<u64>,
    with_constraints: bool,
    refinement: Option<Refinement>,
    refinement_cap: Option<usize>,
    enumeration: Option<(ModelGrammar, EnumOptions)>,
    telemetry: bool,
}

impl Default for Inquiry {
    fn default() -> Inquiry {
        Inquiry::new()
    }
}

impl fmt::Debug for Inquiry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let source = match &self.source {
            Source::Unset => "unset".to_string(),
            Source::Observations(v) => format!("{} observations", v.len()),
            Source::Backend { campaign, .. } => {
                format!("backend campaign ({} cells)", campaign.cells().len())
            }
            Source::Replay { trace, .. } => format!("trace replay ({} records)", trace.len()),
            Source::Harness(_) => "case-study harness".to_string(),
        };
        f.debug_struct("Inquiry")
            .field("source", &source)
            .field("models", &self.models.len())
            .field("threads", &self.threads)
            .field("search_threads", &self.search_threads)
            .field("seed", &self.seed)
            .field("with_constraints", &self.with_constraints)
            .field("refinement", &self.refinement.is_some())
            .field("enumeration", &self.enumeration.is_some())
            .field("telemetry", &self.telemetry)
            .finish()
    }
}

impl Inquiry {
    /// An empty inquiry: no source, no models, one worker thread, no
    /// constraint deduction, no refinement search.
    pub fn new() -> Inquiry {
        Inquiry {
            source: Source::Unset,
            models: Vec::new(),
            threads: 1,
            search_threads: None,
            seed: None,
            with_constraints: false,
            refinement: None,
            refinement_cap: None,
            enumeration: None,
            telemetry: false,
        }
    }

    /// Uses pre-built observations as the counter source (replacing any
    /// previously configured source).
    pub fn observations(mut self, observations: impl Into<Vec<Observation>>) -> Inquiry {
        self.source = Source::Observations(observations.into());
        self
    }

    /// Runs `campaign` against backends produced by `factory` — the fully
    /// general source: any [`CounterBackend`] implementation plugs in here.
    /// The factory is called once per cell, on the worker thread that picks
    /// the cell up.
    pub fn backend<B, F>(mut self, campaign: Campaign, factory: F) -> Inquiry
    where
        B: CounterBackend + 'static,
        F: Fn(&CampaignCell) -> B + Sync + 'static,
    {
        self.source = Source::Backend {
            campaign,
            factory: Box::new(move |cell| Box::new(factory(cell))),
        };
        self
    }

    /// Runs `campaign` on the simulated Haswell MMU/PMU (each cell gets a
    /// cold simulator seeded with the cell's seed) — sugar over
    /// [`backend`](Inquiry::backend) for the common case.
    pub fn sim_campaign(self, campaign: Campaign, mmu: MmuConfig, pmu: PmuConfig) -> Inquiry {
        self.backend(campaign, move |cell| {
            SimBackend::new(mmu.clone(), pmu.clone()).with_seed(cell.seed)
        })
    }

    /// Replays a recorded [`Trace`] through `campaign`, reproducing the
    /// original observations bit-for-bit (or failing loudly on a mismatch).
    pub fn trace(mut self, campaign: Campaign, trace: Trace) -> Inquiry {
        self.source = Source::Replay { campaign, trace };
        self
    }

    /// Uses the standard Haswell case-study harness (the workload suite swept
    /// over the configured page sizes) as the counter source.
    pub fn harness(mut self, config: HarnessConfig) -> Inquiry {
        self.source = Source::Harness(config);
        self
    }

    /// Registers a model under test (no feature annotations).
    pub fn model(mut self, name: &str, cone: ModelCone) -> Inquiry {
        self.models
            .push(ExplorationModel::new(name, FeatureSet::new(), cone));
        self
    }

    /// Registers a model annotated with the microarchitectural features it
    /// includes (the essential-feature intersection ranges over these).
    pub fn model_with_features(
        mut self,
        name: &str,
        features: FeatureSet,
        cone: ModelCone,
    ) -> Inquiry {
        self.models
            .push(ExplorationModel::new(name, features, cone));
        self
    }

    /// Registers a whole model family at once.
    pub fn models(mut self, models: impl IntoIterator<Item = ExplorationModel>) -> Inquiry {
        self.models.extend(models);
        self
    }

    /// Registers a family of `(name, cone)` pairs (no feature annotations).
    pub fn model_family(
        mut self,
        family: impl IntoIterator<Item = (String, ModelCone)>,
    ) -> Inquiry {
        for (name, cone) in family {
            self.models
                .push(ExplorationModel::new(&name, FeatureSet::new(), cone));
        }
        self
    }

    /// Sets the worker-thread budget for the collection campaign, the verdict
    /// fan-out and (unless overridden by
    /// [`search_threads`](Inquiry::search_threads)) the refinement search
    /// (`0` = the host's available parallelism; default 1).  The report is
    /// byte-identical for every value.
    pub fn threads(mut self, threads: usize) -> Inquiry {
        self.threads = threads;
        self
    }

    /// Overrides the worker-thread budget of the refinement search alone
    /// (`0` = the host's available parallelism; default: the inquiry's
    /// [`threads`](Inquiry::threads) budget).  The [`LatticeSearch`] engine
    /// is deterministic, so the report is byte-identical for every value.
    pub fn search_threads(mut self, threads: usize) -> Inquiry {
        self.search_threads = Some(threads);
        self
    }

    /// Overrides the PMU scheduling seed of a campaign or harness source
    /// (pre-built observations and trace replays are unaffected).
    pub fn seed(mut self, seed: u64) -> Inquiry {
        self.seed = Some(seed);
        self
    }

    /// Enables constraint deduction: the report then carries each model's
    /// constraint renderings, and every `Refuted` verdict names the
    /// constraints the observation violates.  Off by default — exact hull
    /// computation is exponential in the counter-group count (the paper's
    /// Figure 9b), so it is a deliberate opt-in.
    pub fn deduce_constraints(mut self, enabled: bool) -> Inquiry {
        self.with_constraints = enabled;
        self
    }

    /// Configures the discovery/elimination refinement search: `generator`
    /// maps a feature set to its model cone, `universe` is the feature
    /// lattice, `initial` the starting feature set.  The resulting
    /// [`SearchGraph`](counterpoint_core::SearchGraph) lands in the report's
    /// `refinement` field.
    pub fn refine<G, S>(mut self, generator: G, universe: &[S], initial: FeatureSet) -> Inquiry
    where
        G: Fn(&FeatureSet) -> ModelCone + Sync + 'static,
        S: AsRef<str>,
    {
        self.refinement = Some(Refinement {
            generator: Box::new(generator),
            universe: universe.iter().map(|s| s.as_ref().to_string()).collect(),
            initial,
        });
        self
    }

    /// Configures the grammar-enumerated model-family stage: `grammar` is
    /// expanded under `options` and canonicalized into a
    /// [`ModelFamily`](counterpoint_models::enumo::ModelFamily); each
    /// assumption group then runs a [`LatticeSearch`] over its feature
    /// sub-lattice, with Farkas certificates and witness rays shared across
    /// groups through one [`CertificatePool`].  The per-group search graphs
    /// and the enumeration accounting land in the report's `enumeration`
    /// field; the JSON is byte-identical at every thread count.
    pub fn model_grammar(mut self, grammar: ModelGrammar, options: EnumOptions) -> Inquiry {
        self.enumeration = Some((grammar, options));
        self
    }

    /// Enables telemetry for the run: [`run`](Inquiry::run) claims the
    /// process-wide telemetry sink (when free), records spans and metrics
    /// across every pipeline stage, and attaches the resulting
    /// [`TelemetryReport`](counterpoint_telemetry::TelemetryReport) to
    /// [`Report::telemetry`].  When another recording is already active (a
    /// harness started one around several inquiries), this run's
    /// instrumentation flows into that recording instead and
    /// `Report::telemetry` stays `None`.  Off by default; the serialized
    /// report JSON is byte-identical either way.
    pub fn telemetry(mut self, enabled: bool) -> Inquiry {
        self.telemetry = enabled;
        self
    }

    /// Caps the number of models the refinement search may evaluate (default:
    /// the search's own limit of 256).  Order-independent: takes effect as
    /// long as [`refine`](Inquiry::refine) is also called before
    /// [`run`](Inquiry::run).
    pub fn max_refinement_models(mut self, limit: usize) -> Inquiry {
        self.refinement_cap = Some(limit);
        self
    }

    /// Runs the session: collects (or replays) the observations, builds the
    /// verdict matrix across the worker threads, optionally deduces
    /// constraints and runs the refinement search, and assembles the
    /// [`Report`].
    ///
    /// # Errors
    ///
    /// [`SessionError::NoObservations`] without a source (or when the source
    /// yields nothing), [`SessionError::NoModels`] with neither models nor a
    /// refinement search, [`SessionError::DimensionMismatch`] when a model's
    /// counter space differs from the observations', and
    /// [`SessionError::Collect`] for acquisition failures.
    pub fn run(self) -> Result<Report, SessionError> {
        let started = Instant::now();
        let Inquiry {
            source,
            models,
            threads,
            search_threads,
            seed,
            with_constraints,
            refinement,
            refinement_cap,
            enumeration,
            telemetry: record_telemetry,
        } = self;

        // Claim the process-wide sink if asked to (and it is free: a `None`
        // here means an enclosing recording absorbs this run's telemetry).
        // Dropping the recording on any early-error return disables
        // collection again.
        let recording = record_telemetry
            .then(telemetry::Recording::try_start)
            .flatten();
        let inquiry_span = telemetry::span("inquiry", "");

        if models.is_empty() && refinement.is_none() && enumeration.is_none() {
            return Err(SessionError::NoModels);
        }

        let collect_stage = telemetry::stage_span("collect");
        let observations: Vec<Observation> = match source {
            Source::Unset => return Err(SessionError::NoObservations),
            Source::Observations(observations) => observations,
            Source::Backend {
                mut campaign,
                factory,
            } => {
                if let Some(seed) = seed {
                    campaign = campaign.with_seed(seed);
                }
                campaign.with_threads(threads).run(factory)?
            }
            Source::Replay { campaign, trace } => campaign.with_threads(threads).replay(&trace)?,
            Source::Harness(mut config) => {
                if let Some(seed) = seed {
                    config.pmu.seed = seed;
                }
                let mmu = config.mmu.clone();
                let pmu = config.pmu.clone();
                case_study_campaign(&config)
                    .with_threads(threads)
                    .run(|cell| SimBackend::new(mmu.clone(), pmu.clone()).with_seed(cell.seed))?
            }
        };
        if observations.is_empty() {
            return Err(SessionError::NoObservations);
        }
        // By-name report lookups (and trace-record keys) require unique
        // observation names; fail loudly instead of silently shadowing.
        let mut seen = std::collections::BTreeSet::new();
        for observation in &observations {
            if !seen.insert(observation.name()) {
                return Err(SessionError::DuplicateObservation {
                    name: observation.name().to_string(),
                });
            }
        }
        let collect_ms = collect_stage.finish_ms();

        let observation_dimension = observations[0].dimension();
        for model in &models {
            if model.cone.dimension() != observation_dimension {
                return Err(SessionError::DimensionMismatch {
                    model: model.name.clone(),
                    model_dimension: model.cone.dimension(),
                    observation_dimension,
                });
            }
        }
        // Validate the refinement lattice against the observations too (built
        // once here; also reused below for the counter names when no models
        // are registered), so a mis-wired generator errors instead of
        // panicking mid-search.
        let initial_refinement_cone = refinement.as_ref().map(|r| (r.generator)(&r.initial));
        if let Some(cone) = &initial_refinement_cone {
            if cone.dimension() != observation_dimension {
                return Err(SessionError::DimensionMismatch {
                    model: cone.name().to_string(),
                    model_dimension: cone.dimension(),
                    observation_dimension,
                });
            }
        }
        // Expand the model grammar (pure in its inputs) and validate the
        // enumerated lattices against the observations the same way.
        let family = enumeration.map(|(grammar, options)| enumo::enumerate(&grammar, &options));
        let initial_enumeration_cone = family
            .as_ref()
            .and_then(|f| f.groups.first())
            .map(|group| group.generator()(&group.initial()));
        if let Some(cone) = &initial_enumeration_cone {
            if cone.dimension() != observation_dimension {
                return Err(SessionError::DimensionMismatch {
                    model: cone.name().to_string(),
                    model_dimension: cone.dimension(),
                    observation_dimension,
                });
            }
        }

        let evaluate_stage = telemetry::stage_span("evaluate");
        let cones: Vec<&ModelCone> = models.iter().map(|m| &m.cone).collect();
        let matrix = check_models_verdicts(&cones, &observations, threads);

        let constraint_sets: Vec<Option<ConstraintSet>> = models
            .iter()
            .map(|m| with_constraints.then(|| deduce_constraints(&m.cone)))
            .collect();

        let model_rows: Vec<ModelVerdicts> = models
            .iter()
            .zip(matrix)
            .zip(&constraint_sets)
            .map(|((model, row), constraints)| {
                let verdicts: Vec<Verdict> = row
                    .into_iter()
                    .zip(&observations)
                    .map(|(verdict, observation)| {
                        let violated = match (&verdict, constraints) {
                            (v, Some(set)) if v.is_refuted() => set
                                .violated_by(observation.region())
                                .into_iter()
                                .map(|c| c.text().to_string())
                                .collect(),
                            _ => Vec::new(),
                        };
                        Verdict::from_engine(verdict, violated)
                    })
                    .collect();
                let infeasible_count = verdicts.iter().filter(|v| v.is_refuted()).count();
                let inconclusive_count = verdicts
                    .iter()
                    .filter(|v| matches!(v, Verdict::Inconclusive { .. }))
                    .count();
                let feasible = verdicts.iter().all(Verdict::is_feasible);
                ModelVerdicts {
                    model: model.name.clone(),
                    features: model.features.iter().cloned().collect(),
                    infeasible_count,
                    inconclusive_count,
                    feasible,
                    verdicts,
                }
            })
            .collect();

        // The one shared intersection implementation (also behind
        // `SearchGraph::essential_features`), so the report field and the
        // search graph can never drift apart.
        let essential_features = essential_feature_intersection(
            models
                .iter()
                .zip(&model_rows)
                .filter(|(_, row)| row.feasible)
                .map(|(model, _)| &model.features),
        );

        let constraints: Vec<ModelConstraints> = models
            .iter()
            .zip(&constraint_sets)
            .filter_map(|(model, set)| {
                set.as_ref().map(|set| ModelConstraints {
                    model: model.name.clone(),
                    constraints: set.all_named().map(|c| c.text().to_string()).collect(),
                })
            })
            .collect();

        let counters: Vec<String> = models
            .first()
            .map(|m| m.cone.counters().names().to_vec())
            .or_else(|| {
                initial_refinement_cone
                    .as_ref()
                    .map(|cone| cone.counters().names().to_vec())
            })
            .or_else(|| {
                initial_enumeration_cone
                    .as_ref()
                    .map(|cone| cone.counters().names().to_vec())
            })
            .unwrap_or_default();
        let evaluate_ms = evaluate_stage.finish_ms();

        let refine_stage = telemetry::stage_span("refine");
        let refinement_graph = refinement.map(|r| {
            let mut search = LatticeSearch::new(r.generator, &r.universe);
            if let Some(limit) = refinement_cap {
                search.set_max_models(limit);
            }
            search.set_threads(search_threads.unwrap_or(threads));
            search.run(&r.initial, &observations)
        });
        let refine_ms = refine_stage.finish_ms();

        // The enumerated-family stage: one lattice search per assumption
        // group, sequentially in signature order (so pool seeding — and the
        // report — never depend on group scheduling), sharing certificates
        // across groups through one pool keyed by group signature.
        let enumerate_stage = telemetry::stage_span("enumerate");
        let enumeration_summary = family.map(|family| {
            let pool = CertificatePool::new();
            let mut groups = Vec::with_capacity(family.groups.len());
            let mut cross_certificates = 0usize;
            let mut cross_witnesses = 0usize;
            for group in &family.groups {
                let mut search = LatticeSearch::new(group.generator(), &group.universe_names());
                if let Some(limit) = refinement_cap {
                    search.set_max_models(limit);
                }
                search.set_threads(search_threads.unwrap_or(threads));
                search.set_shared_pool(&pool, &group.signature);
                let (graph, stats) = search.run_with_stats(&group.initial(), &observations);
                cross_certificates += stats.cross_family_certificate_hits;
                cross_witnesses += stats.cross_family_witness_hits;
                groups.push(EnumeratedGroup {
                    signature: group.signature.clone(),
                    members: group.members.clone(),
                    universe: group.universe_names(),
                    graph,
                });
            }
            EnumerationSummary {
                raw_candidates: family.raw_candidates,
                canonical_candidates: family.canonical_candidates,
                members: family.len(),
                skipped_path_limit: family.skipped_path_limit,
                structural_duplicates: family.structural_duplicates,
                groups,
                cross_family_certificate_hits: cross_certificates,
                cross_family_witness_hits: cross_witnesses,
            }
        });
        let enumerate_ms = enumerate_stage.finish_ms();

        // Close the root span before finishing so its 'E' event makes the
        // snapshot, then detach the recording (if this run owned one).
        drop(inquiry_span);
        let telemetry_snapshot = recording.map(telemetry::Recording::finish);
        Ok(Report {
            version: REPORT_FORMAT_VERSION,
            counters,
            observations: observations
                .iter()
                .map(|o| ObservationSummary {
                    name: o.name().to_string(),
                    mean: o.mean().to_vec(),
                    samples: o.region().num_samples(),
                    confidence: o.region().confidence(),
                })
                .collect(),
            models: model_rows,
            essential_features,
            constraints,
            refinement: refinement_graph,
            enumeration: enumeration_summary,
            stages: StageTimings {
                collect_ms,
                evaluate_ms,
                refine_ms,
                enumerate_ms,
                total_ms: started.elapsed().as_secs_f64() * 1e3,
            },
            telemetry: telemetry_snapshot,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use counterpoint_core::feature_set;
    use counterpoint_mudd::{CounterSignature, CounterSpace};

    /// The toy feature lattice of the explore tests: base allows x only,
    /// `Fy` adds [1, 1], `Fboth` adds [0, 1].
    fn toy_cone(features: &FeatureSet) -> ModelCone {
        let space = CounterSpace::new(&["x", "y"]);
        let mut sigs = vec![CounterSignature::from_counts(vec![1, 0])];
        if features.contains("Fy") {
            sigs.push(CounterSignature::from_counts(vec![1, 1]));
        }
        if features.contains("Fboth") {
            sigs.push(CounterSignature::from_counts(vec![0, 1]));
        }
        let n = sigs.len();
        ModelCone::from_signatures("toy", &space, sigs, n)
    }

    fn toy_observations() -> Vec<Observation> {
        vec![
            Observation::exact("x-only", &[10.0, 0.0]),
            Observation::exact("balanced", &[10.0, 6.0]),
        ]
    }

    fn toy_inquiry() -> Inquiry {
        Inquiry::new()
            .observations(toy_observations())
            .model_with_features(
                "base",
                feature_set::<&str>(&[]),
                toy_cone(&FeatureSet::new()),
            )
            .model_with_features(
                "with-fy",
                feature_set(&["Fy"]),
                toy_cone(&feature_set(&["Fy"])),
            )
    }

    #[test]
    fn verdict_matrix_matches_the_toy_lattice() {
        let report = toy_inquiry().run().unwrap();
        assert_eq!(report.counters, vec!["x".to_string(), "y".to_string()]);
        assert_eq!(report.observations.len(), 2);
        let base = report.model("base").unwrap();
        assert_eq!(base.infeasible_count, 1);
        assert_eq!(base.inconclusive_count, 0);
        assert!(!base.feasible);
        assert!(report.verdict("base", "balanced").unwrap().is_refuted());
        assert!(report.verdict("base", "x-only").unwrap().is_feasible());
        let with_fy = report.model("with-fy").unwrap();
        assert!(with_fy.feasible);
        assert_eq!(report.feasible_models(), vec!["with-fy"]);
        assert_eq!(report.essential_features, Some(vec!["Fy".to_string()]));
        // No constraint deduction requested: no renderings, no violations.
        assert!(report.constraints.is_empty());
        assert!(report
            .verdict("base", "balanced")
            .unwrap()
            .violated_constraints()
            .is_empty());
        assert!(report.stages.total_ms >= 0.0);
    }

    #[test]
    fn constraint_deduction_names_the_violations() {
        let report = toy_inquiry().deduce_constraints(true).run().unwrap();
        let verdict = report.verdict("base", "balanced").unwrap();
        assert!(verdict.is_refuted());
        assert!(
            !verdict.violated_constraints().is_empty(),
            "refutations must name the violated constraints when deduction is on"
        );
        assert!(report.constraints_of("base").is_some());
        assert!(verdict.farkas_certificate().is_some());
    }

    #[test]
    fn refinement_search_lands_in_the_report() {
        let report = Inquiry::new()
            .observations(toy_observations())
            .refine(toy_cone, &["Fy", "Fboth"], FeatureSet::new())
            .run()
            .unwrap();
        let graph = report.refinement.expect("search graph must be present");
        assert!(!graph.steps[0].feasible);
        assert!(graph.steps.iter().any(|s| s.feasible));
        assert!(!graph.minimal_feasible.is_empty());
        // Counter names come from the generator when no models are registered.
        assert_eq!(report.counters, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn max_refinement_models_caps_the_search() {
        let report = Inquiry::new()
            .observations(toy_observations())
            .refine(toy_cone, &["Fy", "Fboth"], FeatureSet::new())
            .max_refinement_models(1)
            .run()
            .unwrap();
        assert_eq!(report.refinement.unwrap().steps.len(), 1);
        // The cap is order-independent: setting it before refine() works too.
        let report = Inquiry::new()
            .observations(toy_observations())
            .max_refinement_models(1)
            .refine(toy_cone, &["Fy", "Fboth"], FeatureSet::new())
            .run()
            .unwrap();
        assert_eq!(report.refinement.unwrap().steps.len(), 1);
    }

    #[test]
    fn misassembled_inquiries_error_instead_of_panicking() {
        assert_eq!(
            Inquiry::new().run().unwrap_err(),
            SessionError::NoModels,
            "no models and no refinement"
        );
        assert_eq!(
            Inquiry::new()
                .model("m", toy_cone(&FeatureSet::new()))
                .run()
                .unwrap_err(),
            SessionError::NoObservations,
            "no source"
        );
        assert_eq!(
            Inquiry::new()
                .observations(Vec::new())
                .model("m", toy_cone(&FeatureSet::new()))
                .run()
                .unwrap_err(),
            SessionError::NoObservations,
            "empty source"
        );
        let duplicate = Inquiry::new()
            .observations(vec![
                Observation::exact("same", &[1.0, 0.0]),
                Observation::exact("same", &[2.0, 0.0]),
            ])
            .model("toy", toy_cone(&FeatureSet::new()))
            .run()
            .unwrap_err();
        assert!(matches!(
            duplicate,
            SessionError::DuplicateObservation { .. }
        ));
        let mismatch = Inquiry::new()
            .observations(vec![Observation::exact("1d", &[1.0])])
            .model("toy", toy_cone(&FeatureSet::new()))
            .run()
            .unwrap_err();
        assert!(matches!(mismatch, SessionError::DimensionMismatch { .. }));
        // A refinement-only inquiry over the wrong counter space errors the
        // same way instead of panicking mid-search.
        let mismatch = Inquiry::new()
            .observations(vec![Observation::exact("1d", &[1.0])])
            .refine(toy_cone, &["Fy"], FeatureSet::new())
            .run()
            .unwrap_err();
        assert!(matches!(mismatch, SessionError::DimensionMismatch { .. }));
    }

    #[test]
    fn reports_are_byte_identical_across_thread_counts() {
        let baseline = toy_inquiry()
            .deduce_constraints(true)
            .run()
            .unwrap()
            .to_json();
        for threads in [0, 2, 8] {
            let report = toy_inquiry()
                .deduce_constraints(true)
                .threads(threads)
                .run()
                .unwrap();
            assert_eq!(report.to_json(), baseline, "threads = {threads}");
        }
    }

    #[test]
    fn enumeration_stage_lands_in_the_report_and_is_deterministic() {
        use counterpoint_haswell::full_counter_space;
        use counterpoint_models::aborts::AbortPoint;
        use counterpoint_models::enumo::{EnumOptions, ModelGrammar};
        use counterpoint_models::prefetch::TriggerSpec;
        use counterpoint_models::Feature;

        let space = full_counter_space();
        // One observation every candidate refutes (walks completing more
        // often than they start violate a constraint every model shares), so
        // certificates harvested in the first group prune the later ones, and
        // one trivially feasible observation.
        let mut impossible = vec![0.0; space.len()];
        impossible[space.index_of("load.ret").unwrap()] = 1000.0;
        impossible[space.index_of("load.causes_walk").unwrap()] = 10.0;
        impossible[space.index_of("load.walk_done").unwrap()] = 100.0;
        impossible[space.index_of("load.walk_done_4k").unwrap()] = 100.0;
        let observations = vec![
            Observation::exact("impossible-walks", &impossible),
            Observation::exact("origin", &vec![0.0; space.len()]),
        ];
        let grammar = ModelGrammar::case_study()
            .with_features(vec![Feature::TlbPrefetch, Feature::WalkBypass])
            .with_triggers(vec![("t0".to_string(), TriggerSpec::t0())])
            .with_abort_points(vec![AbortPoint::DuringWalk]);
        let options = EnumOptions {
            max_models: 32,
            ..EnumOptions::default()
        };
        let run = |threads: usize| {
            Inquiry::new()
                .observations(observations.clone())
                .model_grammar(grammar.clone(), options)
                .threads(threads)
                .run()
                .unwrap()
        };

        let baseline = run(1);
        let summary = baseline.enumeration.as_ref().expect("stage configured");
        assert!(summary.raw_candidates > summary.canonical_candidates);
        assert!(summary.members > 0);
        assert!(
            summary.groups.len() > 1,
            "assumptions must split into groups"
        );
        let searched: usize = summary.groups.iter().map(|g| g.graph.steps.len()).sum();
        assert!(searched >= summary.groups.len());
        assert!(
            summary.cross_family_certificate_hits + summary.cross_family_witness_hits > 0,
            "groups must reuse pooled evidence: {summary:?}"
        );
        // Counter names come from the enumerated generators when no models
        // are registered.
        assert_eq!(baseline.counters.len(), space.len());
        // The in-memory hit counters are timing-dependent and must stay out
        // of the JSON; everything else is byte-identical across threads.
        assert!(!baseline.to_json().contains("cross_family"));
        for threads in [2, 8] {
            assert_eq!(
                run(threads).to_json(),
                baseline.to_json(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn telemetry_snapshot_lands_in_the_report() {
        let report = toy_inquiry()
            .refine(toy_cone, &["Fy", "Fboth"], FeatureSet::new())
            .telemetry(true)
            .run()
            .unwrap();
        let snapshot = report.telemetry.expect("this run owned the sink");
        // Presence (not counts): other tests in this binary may contribute to
        // the sink while the recording is active, but only this run opens the
        // stage spans.
        for stage in ["inquiry", "collect", "evaluate", "refine"] {
            assert!(
                snapshot.events.iter().any(|e| e.name == stage),
                "missing {stage} span"
            );
        }
        assert!(snapshot.counter(telemetry::Metric::LpSolves) > 0);
        assert!(report.stages.total_ms >= 0.0);
        // Without the builder flag no snapshot is attached.
        assert!(toy_inquiry().run().unwrap().telemetry.is_none());
    }

    #[test]
    fn debug_rendering_summarises_the_wiring() {
        let rendered = format!("{:?}", toy_inquiry().threads(4));
        assert!(rendered.contains("2 observations"));
        assert!(rendered.contains("threads: 4"));
    }
}
