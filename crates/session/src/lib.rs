//! The CounterPoint session layer: the refute→refine workflow behind one
//! typed API.
//!
//! The paper's core loop — collect counter observations, test model cones for
//! feasibility, extract refuting evidence, deduce constraints, and guide
//! refinement — historically ran as a relay of free functions passing bare
//! `bool`s and `Vec`s, discarding the Farkas certificates and witness rays the
//! batched feasibility engine computes internally.  This crate redesigns that
//! surface around three types:
//!
//! * [`Inquiry`] — a builder wiring a counter source (any
//!   [`CounterBackend`](counterpoint_collect::CounterBackend), a recorded
//!   [`Trace`](counterpoint_collect::Trace), the case-study harness, or
//!   pre-built observations) together with model families, a thread budget, a
//!   seed, and the optional constraint-deduction and refinement stages;
//! * [`Verdict`] — the per-(model, observation) outcome, carrying the witness
//!   cone point of a feasible test or the Farkas certificate (and violated
//!   constraints) of a refutation;
//! * [`Report`] — the serializable result: verdict matrix, essential
//!   features, constraint renderings, refinement search graph and timing,
//!   with deterministic JSON output suitable as a CI artifact.
//!
//! # Example
//!
//! The paper's running PDE-cache example (Figures 2 and 6) as one session:
//!
//! ```
//! use counterpoint_core::{ModelCone, Observation};
//! use counterpoint_mudd::{dsl::compile_uop, CounterSpace};
//! use counterpoint_session::Inquiry;
//!
//! let counters = CounterSpace::new(&["load.causes_walk", "load.pde$_miss"]);
//! let initial = compile_uop("initial", r#"
//!     incr load.causes_walk;
//!     do LookupPde$;
//!     switch Pde$Status { Hit => pass; Miss => incr load.pde$_miss };
//!     done;
//! "#, &counters).unwrap();
//! let refined = compile_uop("refined", r#"
//!     do LookupPde$;
//!     switch Pde$Status { Hit => pass; Miss => incr load.pde$_miss };
//!     switch Abort { Yes => done; No => incr load.causes_walk };
//!     done;
//! "#, &counters).unwrap();
//!
//! let report = Inquiry::new()
//!     .observations(vec![Observation::exact("microbenchmark", &[1_000.0, 1_400.0])])
//!     .model("initial", ModelCone::from_mudd(&initial).unwrap())
//!     .model("refined", ModelCone::from_mudd(&refined).unwrap())
//!     .deduce_constraints(true)
//!     .run()
//!     .unwrap();
//!
//! // The initial model is refuted — with a checkable Farkas certificate and
//! // the violated constraint named — while the refinement explains the data.
//! let verdict = report.verdict("initial", "microbenchmark").unwrap();
//! assert!(verdict.is_refuted());
//! assert!(verdict.farkas_certificate().is_some());
//! assert!(!verdict.violated_constraints().is_empty());
//! assert_eq!(report.feasible_models(), vec!["refined"]);
//!
//! // The whole session serializes as a deterministic JSON artifact.
//! let json = report.to_json();
//! assert_eq!(
//!     counterpoint_session::Report::from_json(&json).unwrap().to_json(),
//!     json,
//! );
//! ```

pub mod error;
pub mod inquiry;
pub mod report;
pub mod verdict;

pub use error::SessionError;
pub use inquiry::Inquiry;
pub use report::{
    EnumeratedGroup, EnumerationSummary, ModelConstraints, ModelVerdicts, ObservationSummary,
    Report, StageTimings, Timing, REPORT_FORMAT_VERSION,
};
pub use verdict::Verdict;
