//! Serializable inquiry reports: the verdict matrix and its companions as a
//! stable JSON artifact.
//!
//! A [`Report`] is everything an [`Inquiry`](crate::Inquiry) run produced: the
//! observation summaries, one [`ModelVerdicts`] row per model (the verdict
//! matrix), the essential-feature intersection, the deduced constraint
//! renderings and the refinement [`SearchGraph`].  Serialization is
//! deterministic — two runs of the same inquiry, at any thread count, render
//! byte-identical JSON — so reports diff cleanly as CI artifacts.  Wall-clock
//! [`StageTimings`] and the optional [`TelemetryReport`] snapshot are carried
//! in memory but `#[serde(skip)]`ped to keep that property.

use crate::error::SessionError;
use crate::verdict::Verdict;
use counterpoint_core::SearchGraph;
use counterpoint_telemetry::TelemetryReport;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The report file format version this crate writes and accepts.
pub const REPORT_FORMAT_VERSION: u32 = 1;

/// Summary of one observation the inquiry tested models against.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObservationSummary {
    /// The observation's name (workload / configuration label).
    pub name: String,
    /// Sample-mean counter values.
    pub mean: Vec<f64>,
    /// Number of samples behind the confidence region.
    pub samples: usize,
    /// Confidence level of the region.
    pub confidence: f64,
}

/// One row of the verdict matrix: a model and its verdict per observation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelVerdicts {
    /// Model name.
    pub model: String,
    /// Microarchitectural features the model includes.
    pub features: Vec<String>,
    /// Number of observations that refute the model (the per-model quantity
    /// of the paper's Tables 3, 5 and 7).  Inconclusive verdicts are counted
    /// separately, so `feasible == (infeasible_count == 0 &&
    /// inconclusive_count == 0)`.
    pub infeasible_count: usize,
    /// Number of observations the engine could not decide (LP
    /// non-convergence on every path; normally zero).
    pub inconclusive_count: usize,
    /// `true` when every observation is feasible for the model.
    pub feasible: bool,
    /// One verdict per observation, in observation order.
    pub verdicts: Vec<Verdict>,
}

/// The deduced constraint renderings of one model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelConstraints {
    /// Model name.
    pub model: String,
    /// Human-readable constraint renderings (the paper's Table 1 form),
    /// equalities first.
    pub constraints: Vec<String>,
}

/// One assumption group's search results in a grammar-enumerated family run:
/// the models sharing a trigger condition and abort-point set, swept as one
/// feature sub-lattice.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnumeratedGroup {
    /// The group's assumption signature (trigger + abort points).
    pub signature: String,
    /// Canonical member names enumerated under this assumption.
    pub members: Vec<String>,
    /// The group's search universe (feature names).
    pub universe: Vec<String>,
    /// The group's discovery/elimination search graph.
    pub graph: SearchGraph,
}

/// Accounting and per-group search graphs of the grammar-enumerated
/// model-family stage (see `counterpoint_models::enumo`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnumerationSummary {
    /// Closed terms the grammar produced before canonicalization.
    pub raw_candidates: usize,
    /// Distinct canonical specs after dedup (before the member cap).
    pub canonical_candidates: usize,
    /// Canonical members that survived the cap and the structural pass.
    pub members: usize,
    /// Candidates skipped because their μDDs exceeded the path budget.
    pub skipped_path_limit: usize,
    /// Candidates dropped as structural duplicates of earlier members.
    pub structural_duplicates: usize,
    /// Per-assumption-group search results, in signature order.
    pub groups: Vec<EnumeratedGroup>,
    /// Certificates harvested in one group that pruned observations in
    /// another.  Timing-dependent (pool contents vary with worker
    /// scheduling), so in-memory only — never serialized.
    #[serde(skip)]
    pub cross_family_certificate_hits: usize,
    /// Witness rays reused across groups; in-memory only, like the
    /// certificate hits.
    #[serde(skip)]
    pub cross_family_witness_hits: usize,
}

/// Per-stage wall-clock timings of an inquiry run, measured by the telemetry
/// layer's stage spans (`counterpoint_telemetry::stage_span`), which tick even
/// when no recording is active.  In-memory only: serialization skips the
/// timings so report JSON stays deterministic across runs and thread counts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageTimings {
    /// Milliseconds spent collecting (or replaying) observations.
    pub collect_ms: f64,
    /// Milliseconds spent on the verdict matrix and constraint deduction.
    pub evaluate_ms: f64,
    /// Milliseconds spent in the refinement search (zero when the inquiry
    /// configured none).
    pub refine_ms: f64,
    /// Milliseconds spent enumerating and searching grammar-enumerated model
    /// families (zero when the inquiry configured none).
    pub enumerate_ms: f64,
    /// Total wall-clock milliseconds of the run.
    pub total_ms: f64,
}

/// The legacy two-stage timing view, kept so existing callers of
/// [`Report::timing`] keep compiling while they migrate to
/// [`Report::stages`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Timing {
    /// Milliseconds spent collecting (or replaying) observations.
    pub collect_ms: f64,
    /// Milliseconds spent on the verdict matrix, constraint deduction and the
    /// refinement search (the refinement stage folded in, as before the
    /// per-stage split).
    pub evaluate_ms: f64,
    /// Total wall-clock milliseconds of the run.
    pub total_ms: f64,
}

/// The full result of an inquiry run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Report {
    /// Format version (see [`REPORT_FORMAT_VERSION`]).
    pub version: u32,
    /// The counter space the inquiry ranged over, in column order.
    pub counters: Vec<String>,
    /// The observations tested, in campaign order.
    pub observations: Vec<ObservationSummary>,
    /// The verdict matrix, one row per model in registration order.
    pub models: Vec<ModelVerdicts>,
    /// Features present in every feasible model, or `None` when no model is
    /// feasible (the paper's essential-feature argument, Figure 7).
    pub essential_features: Option<Vec<String>>,
    /// Deduced constraint renderings (populated only when the inquiry asked
    /// for constraint deduction).
    pub constraints: Vec<ModelConstraints>,
    /// The discovery/elimination search graph (populated only when the
    /// inquiry configured a refinement search).
    pub refinement: Option<SearchGraph>,
    /// Results of the grammar-enumerated model-family stage (populated only
    /// when the inquiry configured one with
    /// [`Inquiry::model_grammar`](crate::Inquiry::model_grammar); absent from
    /// the JSON otherwise, so pre-existing reports parse unchanged).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub enumeration: Option<EnumerationSummary>,
    /// Per-stage wall-clock timings of the run (not serialized).
    #[serde(skip)]
    pub stages: StageTimings,
    /// The telemetry snapshot of the run, present when the inquiry enabled
    /// telemetry with [`Inquiry::telemetry`](crate::Inquiry::telemetry) and
    /// owned the process-wide sink (not serialized; export it with
    /// [`TelemetryReport::write_files`]).
    #[serde(skip)]
    pub telemetry: Option<TelemetryReport>,
}

impl Report {
    /// The legacy two-stage timing view of [`stages`](Report::stages).
    #[deprecated(since = "0.1.0", note = "use `Report::stages` for per-stage timings")]
    pub fn timing(&self) -> Timing {
        Timing {
            collect_ms: self.stages.collect_ms,
            evaluate_ms: self.stages.evaluate_ms + self.stages.refine_ms + self.stages.enumerate_ms,
            total_ms: self.stages.total_ms,
        }
    }

    /// Renders the report as pretty-printed JSON — the CI artifact format.
    /// Deterministic: identical inquiries produce identical bytes.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report values are finite")
    }

    /// Parses a report from JSON text, rejecting unknown format versions.
    pub fn from_json(text: &str) -> Result<Report, SessionError> {
        let report: Report =
            serde_json::from_str(text).map_err(|e| SessionError::Format(e.to_string()))?;
        if report.version != REPORT_FORMAT_VERSION {
            return Err(SessionError::Format(format!(
                "unknown report format version {} (this build reads version {})",
                report.version, REPORT_FORMAT_VERSION
            )));
        }
        Ok(report)
    }

    /// Writes the report as JSON to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SessionError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json()).map_err(|e| SessionError::Io {
            path: path.display().to_string(),
            reason: e.to_string(),
        })
    }

    /// Reads a JSON report from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Report, SessionError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| SessionError::Io {
            path: path.display().to_string(),
            reason: e.to_string(),
        })?;
        Report::from_json(&text)
    }

    /// The verdict row for a model, if the model was part of the inquiry.
    pub fn model(&self, name: &str) -> Option<&ModelVerdicts> {
        self.models.iter().find(|m| m.model == name)
    }

    /// The verdict for one (model, observation) pair.
    pub fn verdict(&self, model: &str, observation: &str) -> Option<&Verdict> {
        let row = self.model(model)?;
        let idx = self
            .observations
            .iter()
            .position(|o| o.name == observation)?;
        row.verdicts.get(idx)
    }

    /// Names of the models every observation is feasible for.
    pub fn feasible_models(&self) -> Vec<&str> {
        self.models
            .iter()
            .filter(|m| m.feasible)
            .map(|m| m.model.as_str())
            .collect()
    }

    /// The deduced constraint renderings for a model, if the inquiry deduced
    /// them.
    pub fn constraints_of(&self, model: &str) -> Option<&[String]> {
        self.constraints
            .iter()
            .find(|c| c.model == model)
            .map(|c| c.constraints.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        Report {
            version: REPORT_FORMAT_VERSION,
            counters: vec!["load.causes_walk".to_string(), "load.pde$_miss".to_string()],
            observations: vec![ObservationSummary {
                name: "microbenchmark".to_string(),
                mean: vec![1_000.0, 1_400.0],
                samples: 1,
                confidence: 0.99,
            }],
            models: vec![ModelVerdicts {
                model: "initial".to_string(),
                features: vec![],
                infeasible_count: 1,
                inconclusive_count: 0,
                feasible: false,
                verdicts: vec![Verdict::Refuted {
                    farkas_certificate: vec![1.0, -1.0],
                    violated_constraints: vec!["load.pde$_miss <= load.causes_walk".to_string()],
                }],
            }],
            essential_features: None,
            constraints: vec![ModelConstraints {
                model: "initial".to_string(),
                constraints: vec!["load.pde$_miss <= load.causes_walk".to_string()],
            }],
            refinement: None,
            enumeration: None,
            stages: StageTimings {
                collect_ms: 12.5,
                evaluate_ms: 3.25,
                refine_ms: 1.0,
                enumerate_ms: 0.0,
                total_ms: 16.75,
            },
            telemetry: None,
        }
    }

    #[test]
    fn json_round_trip_is_byte_exact_and_drops_timing() {
        let report = sample_report();
        let json = report.to_json();
        let back = Report::from_json(&json).unwrap();
        // Timings and telemetry are process-local and must not survive
        // serialization.
        assert_eq!(back.stages, StageTimings::default());
        assert_eq!(back.telemetry, None);
        assert_eq!(back.to_json(), json, "re-serialization must be byte-exact");
        assert!(!json.contains("timing"), "timings must not leak into JSON");
        assert!(!json.contains("stages"), "timings must not leak into JSON");
        assert!(
            !json.contains("telemetry"),
            "telemetry must not leak into JSON"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_timing_shim_matches_the_stage_timings() {
        let report = sample_report();
        let legacy = report.timing();
        assert_eq!(legacy.collect_ms, report.stages.collect_ms);
        assert_eq!(
            legacy.evaluate_ms,
            report.stages.evaluate_ms + report.stages.refine_ms + report.stages.enumerate_ms
        );
        assert_eq!(legacy.total_ms, report.stages.total_ms);
    }

    #[test]
    fn lookups_resolve_models_and_verdicts() {
        let report = sample_report();
        assert!(report.model("initial").is_some());
        assert!(report.model("missing").is_none());
        let verdict = report.verdict("initial", "microbenchmark").unwrap();
        assert!(verdict.is_refuted());
        assert!(report.verdict("initial", "missing").is_none());
        assert!(report.feasible_models().is_empty());
        assert_eq!(
            report.constraints_of("initial").unwrap(),
            &["load.pde$_miss <= load.causes_walk".to_string()]
        );
        assert!(report.constraints_of("missing").is_none());
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut report = sample_report();
        report.version = 99;
        let err = Report::from_json(&report.to_json()).unwrap_err();
        assert!(matches!(err, SessionError::Format(_)));
        assert!(err.to_string().contains("99"));
    }

    #[test]
    fn save_and_load() {
        let report = sample_report();
        let path = std::env::temp_dir().join("counterpoint_session_report_test.json");
        report.save(&path).unwrap();
        let back = Report::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.to_json(), report.to_json());
        let missing = std::env::temp_dir().join("counterpoint_no_such_report.json");
        assert!(matches!(
            Report::load(&missing),
            Err(SessionError::Io { .. })
        ));
    }
}
