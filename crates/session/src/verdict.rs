//! Certificate-carrying verdicts: the per-(model, observation) outcome of an
//! inquiry.
//!
//! A [`Verdict`] is the session-level enrichment of the core engine's
//! [`FeasibilityVerdict`]: the same
//! decision and evidence, plus the human-readable model constraints the
//! observation violates (when the inquiry deduced them).  Verdicts serialize
//! to a stable, externally tagged JSON object so reports are diffable CI
//! artifacts.
//!
//! [`FeasibilityVerdict`]: counterpoint_core::FeasibilityVerdict

use counterpoint_core::FeasibilityVerdict;
use serde::{DeError, Deserialize, Serialize, Value};

/// The outcome of testing one observation against one model, with the
/// artifact that proves it.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// The observation's confidence region intersects the model cone.
    Feasible {
        /// A counter-space cone point inside the confidence region (up to
        /// solver tolerance): the μpath-flow combination the LP found.
        witness: Vec<f64>,
    },
    /// The confidence region does not intersect the model cone — the model is
    /// refuted by this observation at the region's confidence level.
    Refuted {
        /// A counter-space separating direction `c` with `c · g ≥ 0` for
        /// every cone generator while the whole region lies on the negative
        /// side: the Farkas certificate of the refutation.  Empty only if
        /// extraction failed numerically.
        farkas_certificate: Vec<f64>,
        /// Renderings of the deduced model constraints the observation
        /// violates (populated only when the inquiry deduced constraints).
        violated_constraints: Vec<String>,
    },
    /// No verdict could be reached (the LP failed to converge on every path).
    Inconclusive {
        /// Why the decision could not be made.
        reason: String,
    },
}

impl Verdict {
    /// Wraps a core engine verdict, attaching the violated-constraint
    /// renderings to refutations.
    pub fn from_engine(verdict: FeasibilityVerdict, violated_constraints: Vec<String>) -> Verdict {
        match verdict {
            FeasibilityVerdict::Feasible { witness } => Verdict::Feasible { witness },
            FeasibilityVerdict::Refuted { certificate } => Verdict::Refuted {
                farkas_certificate: certificate,
                violated_constraints,
            },
            FeasibilityVerdict::Inconclusive { reason } => Verdict::Inconclusive { reason },
        }
    }

    /// `true` for [`Verdict::Feasible`].
    pub fn is_feasible(&self) -> bool {
        matches!(self, Verdict::Feasible { .. })
    }

    /// `true` for [`Verdict::Refuted`].
    pub fn is_refuted(&self) -> bool {
        matches!(self, Verdict::Refuted { .. })
    }

    /// The Farkas certificate of a refutation, if one was extracted.
    pub fn farkas_certificate(&self) -> Option<&[f64]> {
        match self {
            Verdict::Refuted {
                farkas_certificate, ..
            } if !farkas_certificate.is_empty() => Some(farkas_certificate),
            _ => None,
        }
    }

    /// The witness cone point of a feasible verdict, if one was extracted.
    pub fn witness(&self) -> Option<&[f64]> {
        match self {
            Verdict::Feasible { witness } if !witness.is_empty() => Some(witness),
            _ => None,
        }
    }

    /// The violated-constraint renderings of a refutation (empty unless the
    /// inquiry deduced constraints).
    pub fn violated_constraints(&self) -> &[String] {
        match self {
            Verdict::Refuted {
                violated_constraints,
                ..
            } => violated_constraints,
            _ => &[],
        }
    }
}

// The vendored serde derive cannot generate payload-carrying enum impls, so
// the externally tagged representation is spelled out by hand; the `status`
// key leads every object so reports stay scannable.
impl Serialize for Verdict {
    fn to_value(&self) -> Value {
        let tagged = |status: &str, fields: Vec<(String, Value)>| {
            let mut entries = vec![("status".to_string(), Value::String(status.to_string()))];
            entries.extend(fields);
            Value::Object(entries)
        };
        match self {
            Verdict::Feasible { witness } => tagged(
                "feasible",
                vec![("witness".to_string(), witness.to_value())],
            ),
            Verdict::Refuted {
                farkas_certificate,
                violated_constraints,
            } => tagged(
                "refuted",
                vec![
                    (
                        "farkas_certificate".to_string(),
                        farkas_certificate.to_value(),
                    ),
                    (
                        "violated_constraints".to_string(),
                        violated_constraints.to_value(),
                    ),
                ],
            ),
            Verdict::Inconclusive { reason } => tagged(
                "inconclusive",
                vec![("reason".to_string(), reason.to_value())],
            ),
        }
    }
}

impl Deserialize for Verdict {
    fn from_value(value: &Value) -> Result<Verdict, DeError> {
        let field = |name: &str| serde::expect_field(value, name, "Verdict");
        let status = String::from_value(field("status")?)?;
        match status.as_str() {
            "feasible" => Ok(Verdict::Feasible {
                witness: Vec::from_value(field("witness")?)?,
            }),
            "refuted" => Ok(Verdict::Refuted {
                farkas_certificate: Vec::from_value(field("farkas_certificate")?)?,
                violated_constraints: Vec::from_value(field("violated_constraints")?)?,
            }),
            "inconclusive" => Ok(Verdict::Inconclusive {
                reason: String::from_value(field("reason")?)?,
            }),
            other => Err(DeError::custom(format!("unknown verdict status `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_round_trip_through_json() {
        let verdicts = vec![
            Verdict::Feasible {
                witness: vec![1.5, 0.25, 1.0 / 3.0],
            },
            Verdict::Refuted {
                farkas_certificate: vec![1.0, -1.0],
                violated_constraints: vec!["load.pde$_miss <= load.causes_walk".to_string()],
            },
            Verdict::Inconclusive {
                reason: "every LP solve path failed to converge".to_string(),
            },
        ];
        for v in &verdicts {
            let text = serde_json::to_string(v).unwrap();
            let back: Verdict = serde_json::from_str(&text).unwrap();
            assert_eq!(&back, v, "round trip of {text}");
        }
    }

    #[test]
    fn accessors_expose_the_evidence() {
        let refuted = Verdict::Refuted {
            farkas_certificate: vec![0.5, -1.0],
            violated_constraints: vec!["a <= b".to_string()],
        };
        assert!(refuted.is_refuted());
        assert!(!refuted.is_feasible());
        assert_eq!(refuted.farkas_certificate(), Some(&[0.5, -1.0][..]));
        assert_eq!(refuted.violated_constraints(), &["a <= b".to_string()]);
        let feasible = Verdict::Feasible { witness: vec![2.0] };
        assert_eq!(feasible.witness(), Some(&[2.0][..]));
        assert!(feasible.farkas_certificate().is_none());
        assert!(feasible.violated_constraints().is_empty());
        // Empty evidence is reported as absent, not as an empty slice.
        assert!(Verdict::Feasible { witness: vec![] }.witness().is_none());
    }

    #[test]
    fn unknown_status_is_rejected() {
        let err = serde_json::from_str::<Verdict>("{\"status\":\"sideways\"}");
        assert!(err.is_err());
    }

    #[test]
    fn from_engine_attaches_violations_to_refutations_only() {
        use counterpoint_core::FeasibilityVerdict;
        let violations = vec!["x <= y".to_string()];
        let refuted = Verdict::from_engine(
            FeasibilityVerdict::Refuted {
                certificate: vec![1.0],
            },
            violations.clone(),
        );
        assert_eq!(refuted.violated_constraints(), &violations[..]);
        let feasible = Verdict::from_engine(
            FeasibilityVerdict::Feasible { witness: vec![1.0] },
            violations,
        );
        assert!(feasible.violated_constraints().is_empty());
    }
}
