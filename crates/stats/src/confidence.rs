//! Counter confidence regions.
//!
//! CounterPoint treats each HEC observation not as a point but as a region of
//! values the true (noise-free) counts are likely to lie in.  Given time-series
//! samples `{Yᵢ}` of the counter vector, the sample mean `Ȳ` is asymptotically
//! Gaussian, so the region is the confidence ellipsoid
//! `{ v : (v − Ȳ)ᵀ Σ_Ȳ⁻¹ (v − Ȳ) ≤ χ²_{N,α} }` where `Σ_Ȳ = Σ_Y / M` is the plugin
//! estimate of the sample-mean covariance.  Because the ellipsoid is a quadratic
//! form, the LP feasibility test uses its bounding box aligned with the ellipsoid's
//! principal axes: the half-length of axis `k` is `sqrt(λₖ · χ²_{N,α})` where `λₖ`
//! is the corresponding eigenvalue (paper, Appendix A and Figure 5c).
//!
//! The [`NoiseModel::Independent`] variant reproduces the naive baseline the paper
//! compares against: each counter gets its own interval and correlations are
//! ignored, which inflates the region and hides constraint violations.

use crate::descriptive::{covariance_matrix, sample_mean_vector};
use crate::special::chi2_quantile;
use counterpoint_numeric::{jacobi_eigen, FVector};

/// How measurement noise across counters is modelled when constructing a confidence
/// region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NoiseModel {
    /// Use the full covariance matrix: axes follow the principal components of the
    /// data (the paper's approach).
    Correlated,
    /// Treat every counter independently: axes are the coordinate axes and each
    /// width comes from that counter's variance alone (the baseline approach).
    Independent,
}

/// A counter confidence region: an ellipsoid summarised by its principal-axis
/// bounding box.
///
/// The region is described by a center (the sample mean), a set of orthonormal
/// axes, and a half-width per axis.  A point `v` is inside the (boxed) region iff
/// `|eₖ · (v − center)| ≤ widthₖ` for every axis `k`.
#[derive(Clone, Debug)]
pub struct ConfidenceRegion {
    center: Vec<f64>,
    axes: Vec<Vec<f64>>,
    half_widths: Vec<f64>,
    confidence: f64,
    num_samples: usize,
    noise_model: NoiseModel,
    /// Whether `axes` is exactly the standard basis (`axes[k] == e_k`), cached
    /// at construction.  Exact and independent-noise regions are axis-aligned
    /// by construction, and every projection against them collapses from a
    /// dense `O(d)` dot per axis to a single component read — the fast paths
    /// below rely on this.
    standard_axes: bool,
}

/// Returns `true` when `axes` is exactly the standard basis of `R^dim`.
fn axes_are_standard(axes: &[Vec<f64>], dim: usize) -> bool {
    axes.len() == dim
        && axes.iter().enumerate().all(|(k, axis)| {
            axis.len() == dim
                && axis
                    .iter()
                    .enumerate()
                    .all(|(i, &v)| v == if i == k { 1.0 } else { 0.0 })
        })
}

impl ConfidenceRegion {
    /// Builds a confidence region from time-series samples (rows are HEC vectors
    /// recorded at regular intervals).
    ///
    /// `confidence` is the coverage level, e.g. `0.99` for the paper's default.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, rows have inconsistent lengths, or
    /// `confidence` is not in `(0, 1)`.
    pub fn from_samples(
        samples: &[Vec<f64>],
        confidence: f64,
        noise_model: NoiseModel,
    ) -> ConfidenceRegion {
        assert!(
            !samples.is_empty(),
            "confidence region requires at least one sample"
        );
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence level must be in (0, 1)"
        );
        let dim = samples[0].len();
        let center = sample_mean_vector(samples);
        let m = samples.len() as f64;
        let chi2 = if dim == 0 {
            0.0
        } else {
            chi2_quantile(confidence, dim.max(1))
        };

        // Plugin estimator for the covariance of the sample mean.
        let cov = covariance_matrix(samples);

        let (axes, half_widths) = match noise_model {
            NoiseModel::Correlated => {
                let eig = jacobi_eigen(&cov);
                let axes: Vec<Vec<f64>> =
                    eig.vectors.iter().map(|v| v.as_slice().to_vec()).collect();
                let widths: Vec<f64> = eig
                    .values
                    .iter()
                    .map(|&lambda| ((lambda.max(0.0) / m) * chi2).sqrt())
                    .collect();
                (axes, widths)
            }
            NoiseModel::Independent => {
                let mut axes = Vec::with_capacity(dim);
                let mut widths = Vec::with_capacity(dim);
                for i in 0..dim {
                    let mut e = vec![0.0; dim];
                    e[i] = 1.0;
                    axes.push(e);
                    widths.push(((cov.get(i, i) / m) * chi2).sqrt());
                }
                (axes, widths)
            }
        };

        let standard_axes = axes_are_standard(&axes, dim);
        ConfidenceRegion {
            center,
            axes,
            half_widths,
            confidence,
            num_samples: samples.len(),
            noise_model,
            standard_axes,
        }
    }

    /// Builds a degenerate, zero-width region centred on a single exact observation.
    ///
    /// Useful when feeding noise-free (simulated ground-truth) counter values into
    /// the feasibility machinery.
    pub fn exact(point: &[f64]) -> ConfidenceRegion {
        let dim = point.len();
        let axes = (0..dim)
            .map(|i| {
                let mut e = vec![0.0; dim];
                e[i] = 1.0;
                e
            })
            .collect();
        ConfidenceRegion {
            center: point.to_vec(),
            axes,
            half_widths: vec![0.0; dim],
            confidence: 1.0,
            num_samples: 1,
            noise_model: NoiseModel::Independent,
            standard_axes: true,
        }
    }

    /// The region's center (the sample mean `Ȳ`).
    pub fn center(&self) -> &[f64] {
        &self.center
    }

    /// The orthonormal axes of the bounding box.
    pub fn axes(&self) -> &[Vec<f64>] {
        &self.axes
    }

    /// The half-width of the box along each axis.
    pub fn half_widths(&self) -> &[f64] {
        &self.half_widths
    }

    /// Number of counters.
    pub fn dimension(&self) -> usize {
        self.center.len()
    }

    /// The confidence level the region was constructed at.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// Number of samples the region was estimated from.
    pub fn num_samples(&self) -> usize {
        self.num_samples
    }

    /// Which noise model was used.
    pub fn noise_model(&self) -> NoiseModel {
        self.noise_model
    }

    /// Returns `true` if the region's axes are exactly the standard basis
    /// (`axes[k] == e_k`), as produced by [`ConfidenceRegion::exact`] and the
    /// [`NoiseModel::Independent`] construction.  Projections against such a
    /// region need one component read per axis instead of a dense dot, and
    /// callers on hot paths (the LP bound builder, certificate pruning) branch
    /// on this.
    pub fn standard_axes(&self) -> bool {
        self.standard_axes
    }

    /// Returns `true` if the point lies inside the bounding box.
    ///
    /// # Panics
    ///
    /// Panics if `point` has the wrong dimension.
    pub fn contains(&self, point: &[f64]) -> bool {
        assert_eq!(point.len(), self.dimension(), "point dimension mismatch");
        if self.standard_axes {
            // Axis k projects the delta onto component k, bit-identically to
            // the dense dot below (every other term of the dot is `x · 0`).
            return point
                .iter()
                .zip(self.center.iter())
                .zip(self.half_widths.iter())
                .all(|((p, c), width)| (p - c).abs() <= width + 1e-9);
        }
        let delta = FVector::from_slice(point).sub(&FVector::from_slice(&self.center));
        self.axes
            .iter()
            .zip(self.half_widths.iter())
            .all(|(axis, width)| {
                let proj = FVector::from_slice(axis).dot(&delta);
                proj.abs() <= width + 1e-9
            })
    }

    /// Projects the region onto a direction `a`, returning the `(min, max)` of
    /// `a · v` over the bounding box.
    ///
    /// This is how individual model constraints are checked against an observation:
    /// the constraint `a · v ≥ 0` is violated at this confidence level iff the
    /// interval's maximum is still negative.
    ///
    /// # Panics
    ///
    /// Panics if `a` has the wrong dimension.
    pub fn interval_along(&self, a: &[f64]) -> (f64, f64) {
        assert_eq!(a.len(), self.dimension(), "direction dimension mismatch");
        if self.standard_axes {
            // `a · e_k == a[k]` exactly, so the spread collapses to one
            // multiply per axis (the dense path recomputes a full dot per
            // axis).  Same summation order as `FVector::dot`, so the result
            // is bit-identical.
            let centre_proj: f64 = a.iter().zip(self.center.iter()).map(|(x, c)| x * c).sum();
            let spread: f64 = a
                .iter()
                .zip(self.half_widths.iter())
                .map(|(x, width)| (x * width).abs())
                .sum();
            return (centre_proj - spread, centre_proj + spread);
        }
        let a_vec = FVector::from_slice(a);
        let centre_proj = a_vec.dot(&FVector::from_slice(&self.center));
        let spread: f64 = self
            .axes
            .iter()
            .zip(self.half_widths.iter())
            .map(|(axis, width)| (a_vec.dot(&FVector::from_slice(axis)) * width).abs())
            .sum();
        (centre_proj - spread, centre_proj + spread)
    }

    /// The corner points of the bounding box (2^k corners for the k axes with
    /// non-zero width, capped to the first 20 axes to avoid combinatorial blowup).
    /// Mostly useful for plotting and small-dimension tests.
    pub fn corners(&self) -> Vec<Vec<f64>> {
        let active: Vec<usize> = (0..self.axes.len())
            .filter(|&i| self.half_widths[i] > 0.0)
            .take(20)
            .collect();
        let n = active.len();
        let mut corners = Vec::with_capacity(1 << n);
        for mask in 0..(1usize << n) {
            let mut point = self.center.clone();
            for (bit, &axis_idx) in active.iter().enumerate() {
                let sign = if mask & (1 << bit) != 0 { 1.0 } else { -1.0 };
                for (p, a) in point.iter_mut().zip(self.axes[axis_idx].iter()) {
                    *p += sign * self.half_widths[axis_idx] * a;
                }
            }
            corners.push(point);
        }
        corners
    }

    /// A scalar proxy for the region's size: the product of the axis extents
    /// (`2·widthₖ`).  Only meaningful for comparing two regions over the same
    /// counters — e.g. demonstrating that the correlated construction is tighter
    /// than the independent one (Figure 3d).
    pub fn volume_proxy(&self) -> f64 {
        self.half_widths.iter().map(|w| 2.0 * w).product()
    }

    /// Sum of half-widths — a blow-up-free alternative to [`volume_proxy`] for
    /// high-dimensional comparisons.
    ///
    /// [`volume_proxy`]: ConfidenceRegion::volume_proxy
    pub fn total_extent(&self) -> f64 {
        self.half_widths.iter().sum()
    }

    /// Returns a copy of the region with every half-width scaled by `factor`.
    ///
    /// The main consumer is the counter-collection layer: when an event schedule
    /// multiplexes `R` rounds onto the physical counters, each event is observed
    /// on only a `1/R` fraction of the measurement interval and the extrapolated
    /// sample variance inflates by ~`R` — i.e. the standard error (and hence
    /// every half-width) by ~`sqrt(R)`, the planner's reported inflation factor.
    /// Widening a region estimated from few noisy samples by that factor keeps
    /// the feasibility test conservative instead of over-confident.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn inflated(&self, factor: f64) -> ConfidenceRegion {
        assert!(
            factor.is_finite() && factor > 0.0,
            "inflation factor must be finite and positive"
        );
        ConfidenceRegion {
            half_widths: self.half_widths.iter().map(|w| w * factor).collect(),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn correlated_samples(n: usize) -> Vec<Vec<f64>> {
        // Counter 1 tracks counter 0 almost perfectly (plus a fixed offset), like
        // load.causes_walk and load.walk_done on a workload with few aborts.
        (0..n)
            .map(|i| {
                let x = 1000.0 + (i % 17) as f64 * 10.0;
                vec![x, x + 50.0]
            })
            .collect()
    }

    #[test]
    fn center_is_sample_mean() {
        let samples = vec![vec![1.0, 10.0], vec![3.0, 30.0]];
        let region = ConfidenceRegion::from_samples(&samples, 0.99, NoiseModel::Correlated);
        assert_eq!(region.center(), &[2.0, 20.0]);
        assert_eq!(region.dimension(), 2);
        assert_eq!(region.num_samples(), 2);
        assert_eq!(region.confidence(), 0.99);
    }

    #[test]
    fn correlated_region_is_tighter_than_independent() {
        let samples = correlated_samples(200);
        let corr = ConfidenceRegion::from_samples(&samples, 0.99, NoiseModel::Correlated);
        let indep = ConfidenceRegion::from_samples(&samples, 0.99, NoiseModel::Independent);
        assert!(corr.volume_proxy() < indep.volume_proxy());
        assert_eq!(corr.noise_model(), NoiseModel::Correlated);
        assert_eq!(indep.noise_model(), NoiseModel::Independent);
    }

    #[test]
    fn region_contains_its_center_and_mean_of_samples() {
        let samples = correlated_samples(100);
        let region = ConfidenceRegion::from_samples(&samples, 0.99, NoiseModel::Correlated);
        assert!(region.contains(region.center()));
    }

    #[test]
    fn region_excludes_distant_points() {
        let samples = correlated_samples(100);
        let region = ConfidenceRegion::from_samples(&samples, 0.99, NoiseModel::Correlated);
        let far = vec![10_000.0, 10.0];
        assert!(!region.contains(&far));
    }

    #[test]
    fn more_samples_shrink_the_region() {
        let small =
            ConfidenceRegion::from_samples(&correlated_samples(50), 0.99, NoiseModel::Independent);
        let large = ConfidenceRegion::from_samples(
            &correlated_samples(5000),
            0.99,
            NoiseModel::Independent,
        );
        assert!(large.total_extent() < small.total_extent());
    }

    #[test]
    fn higher_confidence_grows_the_region() {
        let samples = correlated_samples(100);
        let narrow = ConfidenceRegion::from_samples(&samples, 0.90, NoiseModel::Correlated);
        let wide = ConfidenceRegion::from_samples(&samples, 0.999, NoiseModel::Correlated);
        assert!(wide.total_extent() > narrow.total_extent());
    }

    #[test]
    fn exact_region_is_a_point() {
        let region = ConfidenceRegion::exact(&[5.0, 7.0]);
        assert!(region.contains(&[5.0, 7.0]));
        assert!(!region.contains(&[5.0, 8.0]));
        assert_eq!(region.half_widths(), &[0.0, 0.0]);
        assert_eq!(region.interval_along(&[1.0, 1.0]), (12.0, 12.0));
    }

    #[test]
    fn interval_along_contains_projected_samples_mostly() {
        let samples = correlated_samples(500);
        let region = ConfidenceRegion::from_samples(&samples, 0.99, NoiseModel::Correlated);
        // The difference counter1 - counter0 is exactly 50 in every sample, so the
        // projection along (−1, 1) must be a tight interval around 50.
        let (lo, hi) = region.interval_along(&[-1.0, 1.0]);
        assert!(lo <= 50.0 + 1e-6 && hi >= 50.0 - 1e-6);
        assert!(
            hi - lo < 1.0,
            "correlated region should be tight in the correlated direction"
        );
        // The independent region is far looser in the same direction.
        let indep = ConfidenceRegion::from_samples(&samples, 0.99, NoiseModel::Independent);
        let (ilo, ihi) = indep.interval_along(&[-1.0, 1.0]);
        assert!(ihi - ilo > (hi - lo) * 10.0);
    }

    #[test]
    fn corners_are_inside_region() {
        let samples = correlated_samples(100);
        let region = ConfidenceRegion::from_samples(&samples, 0.99, NoiseModel::Independent);
        let corners = region.corners();
        assert_eq!(corners.len(), 4);
        for c in &corners {
            assert!(region.contains(c));
        }
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_panic() {
        let _ = ConfidenceRegion::from_samples(&[], 0.99, NoiseModel::Correlated);
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn invalid_confidence_panics() {
        let _ = ConfidenceRegion::from_samples(&[vec![1.0]], 1.5, NoiseModel::Correlated);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn contains_with_wrong_dimension_panics() {
        let region = ConfidenceRegion::exact(&[1.0, 2.0]);
        let _ = region.contains(&[1.0]);
    }

    #[test]
    fn inflated_scales_half_widths_only() {
        let samples = correlated_samples(100);
        let region = ConfidenceRegion::from_samples(&samples, 0.99, NoiseModel::Correlated);
        let wide = region.inflated(3.0);
        assert_eq!(wide.center(), region.center());
        assert_eq!(wide.axes(), region.axes());
        assert_eq!(wide.noise_model(), region.noise_model());
        for (w, r) in wide.half_widths().iter().zip(region.half_widths()) {
            assert_eq!(*w, r * 3.0);
        }
        // Inflation by 1 is the identity.
        assert_eq!(region.inflated(1.0).half_widths(), region.half_widths());
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn inflated_rejects_non_positive_factor() {
        let _ = ConfidenceRegion::exact(&[1.0]).inflated(0.0);
    }
}
