//! Descriptive statistics over HEC sample matrices.
//!
//! A *sample matrix* is a list of HEC vectors recorded at regular intervals over a
//! program's execution (paper, Section 4): `samples[i][j]` is the value of counter
//! `j` in the `i`-th time slice.  CounterPoint reduces such a matrix to a sample
//! mean and a full covariance matrix; the covariance is what distinguishes its
//! correlated confidence regions from the naive independent-counter treatment.

use counterpoint_numeric::FMatrix;

/// Arithmetic mean of a slice.
///
/// # Panics
///
/// Panics if the slice is empty.
///
/// ```
/// use counterpoint_stats::mean;
/// assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of an empty slice is undefined");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Unbiased (n−1) sample variance.
///
/// Returns `0.0` for slices with fewer than two elements.
///
/// ```
/// use counterpoint_stats::variance;
/// assert_eq!(variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]), 32.0 / 7.0);
/// ```
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64
}

/// Unbiased sample covariance of two equally long series.
///
/// # Panics
///
/// Panics if the series lengths differ or are empty.
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(
        xs.len(),
        ys.len(),
        "covariance requires equal-length series"
    );
    assert!(!xs.is_empty(), "covariance of empty series is undefined");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter()
        .zip(ys.iter())
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / (xs.len() - 1) as f64
}

/// Pearson correlation coefficient of two series.
///
/// Returns `0.0` when either series has zero variance (the convention used when
/// scanning HEC pairs for strong correlations: a constant counter correlates with
/// nothing).
///
/// ```
/// use counterpoint_stats::pearson;
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let vx = variance(xs);
    let vy = variance(ys);
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    covariance(xs, ys) / (vx.sqrt() * vy.sqrt())
}

/// Component-wise mean of a sample matrix (rows are observations, columns are
/// counters).
///
/// # Panics
///
/// Panics if `samples` is empty or rows have inconsistent lengths.
pub fn sample_mean_vector(samples: &[Vec<f64>]) -> Vec<f64> {
    assert!(!samples.is_empty(), "sample matrix must be non-empty");
    let dim = samples[0].len();
    let mut out = vec![0.0; dim];
    for row in samples {
        assert_eq!(row.len(), dim, "inconsistent sample dimensions");
        for (o, v) in out.iter_mut().zip(row.iter()) {
            *o += v;
        }
    }
    for o in &mut out {
        *o /= samples.len() as f64;
    }
    out
}

/// Full sample covariance matrix of a sample matrix (rows are observations).
///
/// # Panics
///
/// Panics if `samples` is empty or rows have inconsistent lengths.
pub fn covariance_matrix(samples: &[Vec<f64>]) -> FMatrix {
    assert!(!samples.is_empty(), "sample matrix must be non-empty");
    let dim = samples[0].len();
    let means = sample_mean_vector(samples);
    let mut cov = FMatrix::zeros(dim, dim);
    if samples.len() < 2 {
        return cov;
    }
    let denom = (samples.len() - 1) as f64;
    for row in samples {
        for i in 0..dim {
            let di = row[i] - means[i];
            for j in i..dim {
                let dj = row[j] - means[j];
                cov.set(i, j, cov.get(i, j) + di * dj / denom);
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..dim {
        for j in 0..i {
            cov.set(i, j, cov.get(j, i));
        }
    }
    cov
}

/// Pearson correlation matrix of a sample matrix.
///
/// Entry `(i, j)` is the correlation of counters `i` and `j`; diagonal entries are
/// `1.0` (or `0.0` for constant counters).  The paper reports that more than 25% of
/// Haswell counter pairs have a correlation above 0.9 — this is the matrix that
/// claim is computed from.
pub fn correlation_matrix(samples: &[Vec<f64>]) -> FMatrix {
    let cov = covariance_matrix(samples);
    let dim = cov.nrows();
    let mut corr = FMatrix::zeros(dim, dim);
    for i in 0..dim {
        for j in 0..dim {
            let denom = (cov.get(i, i) * cov.get(j, j)).sqrt();
            let value = if denom == 0.0 {
                0.0
            } else {
                cov.get(i, j) / denom
            };
            corr.set(i, j, value);
        }
    }
    corr
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[4.0]), 4.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!(close(variance(&[1.0, 2.0, 3.0]), 1.0));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mean_of_empty_panics() {
        let _ = mean(&[]);
    }

    #[test]
    fn covariance_of_identical_series_is_variance() {
        let x = [1.0, 4.0, 2.0, 8.0];
        assert!(close(covariance(&x, &x), variance(&x)));
    }

    #[test]
    fn covariance_sign_reflects_relationship() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y_up = [10.0, 20.0, 30.0, 40.0];
        let y_down = [40.0, 30.0, 20.0, 10.0];
        assert!(covariance(&x, &y_up) > 0.0);
        assert!(covariance(&x, &y_down) < 0.0);
    }

    #[test]
    fn pearson_bounds_and_special_cases() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!(close(pearson(&x, &x), 1.0));
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!(close(pearson(&x, &neg), -1.0));
        let constant = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson(&x, &constant), 0.0);
        // Uncorrelated-ish series stays within [-1, 1].
        let y = [1.0, -1.0, 1.0, -1.0];
        let r = pearson(&x, &y);
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn sample_mean_vector_componentwise() {
        let samples = vec![vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]];
        assert_eq!(sample_mean_vector(&samples), vec![3.0, 20.0]);
    }

    #[test]
    fn covariance_matrix_matches_pairwise() {
        let samples = vec![
            vec![1.0, 2.0, 0.5],
            vec![2.0, 4.5, 0.0],
            vec![3.0, 5.5, 1.5],
            vec![4.0, 8.5, 1.0],
        ];
        let cov = covariance_matrix(&samples);
        let col = |j: usize| -> Vec<f64> { samples.iter().map(|r| r[j]).collect() };
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    close(cov.get(i, j), covariance(&col(i), &col(j))),
                    "entry ({i},{j})"
                );
            }
        }
        assert!(cov.is_symmetric(1e-12));
    }

    #[test]
    fn covariance_matrix_single_sample_is_zero() {
        let cov = covariance_matrix(&[vec![1.0, 2.0]]);
        assert_eq!(cov.get(0, 0), 0.0);
        assert_eq!(cov.get(1, 1), 0.0);
    }

    #[test]
    fn correlation_matrix_diagonal_is_one() {
        let samples = vec![
            vec![1.0, 9.0],
            vec![2.0, 7.0],
            vec![3.0, 8.0],
            vec![4.0, 2.0],
        ];
        let corr = correlation_matrix(&samples);
        assert!(close(corr.get(0, 0), 1.0));
        assert!(close(corr.get(1, 1), 1.0));
        assert!(corr.get(0, 1) < 0.0);
        assert!(close(corr.get(0, 1), corr.get(1, 0)));
    }

    #[test]
    fn correlation_matrix_handles_constant_counter() {
        let samples = vec![vec![1.0, 5.0], vec![2.0, 5.0], vec![3.0, 5.0]];
        let corr = correlation_matrix(&samples);
        assert_eq!(corr.get(0, 1), 0.0);
        assert_eq!(corr.get(1, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn ragged_samples_panic() {
        let _ = sample_mean_vector(&[vec![1.0, 2.0], vec![1.0]]);
    }
}
