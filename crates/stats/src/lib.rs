//! Statistics substrate for CounterPoint.
//!
//! Hardware event counters are multiplexed onto a handful of physical counters, so
//! the logical counts `perf`-style tools report are extrapolations with substantial
//! noise.  CounterPoint's answer (paper, Section 4) is the *counter confidence
//! region*: treat each observation as the sample mean of a time series of HEC
//! vectors, estimate the full covariance matrix (not just per-counter variances),
//! and build a 99% confidence ellipsoid whose principal-axis bounding box feeds the
//! LP feasibility test.
//!
//! This crate provides everything that pipeline needs:
//!
//! * [`special`] — log-gamma, the regularized incomplete gamma function, and χ² /
//!   normal distribution functions and quantiles,
//! * [`descriptive`] — means, (co)variances and Pearson correlation of HEC sample
//!   matrices,
//! * [`confidence`] — [`ConfidenceRegion`]: the ellipsoid and its principal-axis
//!   bounding box, with both the paper's correlated construction and the naive
//!   independent-counter baseline it is compared against.
//!
//! # Example
//!
//! ```
//! use counterpoint_stats::{ConfidenceRegion, NoiseModel};
//!
//! // Two perfectly correlated counters: the correlated region is much tighter
//! // in the "anti-correlated" direction than the independent baseline.
//! let samples: Vec<Vec<f64>> = (0..100)
//!     .map(|i| {
//!         let x = 1000.0 + (i % 10) as f64 * 5.0;
//!         vec![x, x + 3.0]
//!     })
//!     .collect();
//! let correlated = ConfidenceRegion::from_samples(&samples, 0.99, NoiseModel::Correlated);
//! let independent = ConfidenceRegion::from_samples(&samples, 0.99, NoiseModel::Independent);
//! assert!(correlated.volume_proxy() < independent.volume_proxy());
//! ```

pub mod confidence;
pub mod descriptive;
pub mod special;

pub use confidence::{ConfidenceRegion, NoiseModel};
pub use descriptive::{
    correlation_matrix, covariance, covariance_matrix, mean, pearson, sample_mean_vector, variance,
};
pub use special::{chi2_cdf, chi2_quantile, ln_gamma, normal_cdf, regularized_gamma_p};
