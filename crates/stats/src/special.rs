//! Special functions: log-gamma, regularized incomplete gamma, χ² and normal
//! distributions.
//!
//! CounterPoint fixes the confidence level of counter confidence regions at 99%
//! (paper, Section 4); turning that level into an ellipsoid radius requires the χ²
//! quantile with one degree of freedom per counter.  The implementations here are
//! the standard Lanczos approximation for `ln Γ`, the series / continued-fraction
//! split for the regularized incomplete gamma function, and bisection for the χ²
//! quantile — accurate to far better than the noise floor of multiplexed counters.

/// Natural logarithm of the gamma function, via the Lanczos approximation.
///
/// Accurate to roughly 1e-13 for `x > 0`.
///
/// # Panics
///
/// Panics if `x <= 0`.
///
/// ```
/// use counterpoint_stats::ln_gamma;
/// assert!((ln_gamma(5.0) - (24.0f64).ln()).abs() < 1e-12); // Γ(5) = 4! = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients (g = 7, n = 9).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction otherwise.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
///
/// ```
/// use counterpoint_stats::regularized_gamma_p;
/// // P(1, x) = 1 - exp(-x)
/// assert!((regularized_gamma_p(1.0, 2.0) - (1.0 - (-2.0f64).exp())).abs() < 1e-12);
/// ```
pub fn regularized_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "regularized_gamma_p requires a > 0");
    assert!(x >= 0.0, "regularized_gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-16 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction (Lentz's algorithm) for Q(a, x); P = 1 - Q.
        let tiny = 1e-300;
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / tiny;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < tiny {
                d = tiny;
            }
            c = b + an / c;
            if c.abs() < tiny {
                c = tiny;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-16 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        1.0 - q
    }
}

/// Cumulative distribution function of the χ² distribution with `dof` degrees of
/// freedom.
///
/// # Panics
///
/// Panics if `dof == 0` or `x < 0`.
///
/// ```
/// use counterpoint_stats::chi2_cdf;
/// // Median of χ²(1) is about 0.4549.
/// assert!((chi2_cdf(0.4549, 1) - 0.5).abs() < 1e-3);
/// ```
pub fn chi2_cdf(x: f64, dof: usize) -> f64 {
    assert!(
        dof > 0,
        "chi-square requires at least one degree of freedom"
    );
    assert!(x >= 0.0, "chi-square CDF requires x >= 0");
    regularized_gamma_p(dof as f64 / 2.0, x / 2.0)
}

/// Quantile (inverse CDF) of the χ² distribution with `dof` degrees of freedom,
/// computed by bisection.
///
/// `p` is the cumulative probability, e.g. `0.99` for the paper's 99% confidence
/// regions.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)` or `dof == 0`.
///
/// ```
/// use counterpoint_stats::chi2_quantile;
/// // Well-known table value: χ²₀.₉₅(1) ≈ 3.841.
/// assert!((chi2_quantile(0.95, 1) - 3.841).abs() < 1e-2);
/// // χ²₀.₉₉(2) ≈ 9.210.
/// assert!((chi2_quantile(0.99, 2) - 9.210).abs() < 1e-2);
/// ```
pub fn chi2_quantile(p: f64, dof: usize) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile probability must be in (0, 1)");
    assert!(
        dof > 0,
        "chi-square requires at least one degree of freedom"
    );
    // Bracket the root: the mean is dof, the variance 2*dof; expand upward until the
    // CDF exceeds p.
    let mut lo = 0.0f64;
    let mut hi = (dof as f64) + 10.0 * (2.0 * dof as f64).sqrt() + 10.0;
    while chi2_cdf(hi, dof) < p {
        hi *= 2.0;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if chi2_cdf(mid, dof) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Standard normal cumulative distribution function.
///
/// ```
/// use counterpoint_stats::normal_cdf;
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
/// assert!((normal_cdf(1.959964) - 0.975).abs() < 1e-5);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function (Numerical-Recipes style rational Chebyshev fit,
/// relative error below 1.2e-7 — ample for confidence-level arithmetic).
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0f64;
        for n in 1..12 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert!(close(ln_gamma(n as f64), fact.ln(), 1e-10), "Γ({n})");
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-10
        ));
        // Γ(3/2) = sqrt(pi)/2
        assert!(close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-10
        ));
    }

    #[test]
    #[should_panic(expected = "x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn incomplete_gamma_basics() {
        assert_eq!(regularized_gamma_p(2.0, 0.0), 0.0);
        // P(a, x) -> 1 as x -> inf.
        assert!(regularized_gamma_p(3.0, 100.0) > 0.999_999);
        // P(1, x) = 1 - e^{-x}.
        for x in [0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            assert!(close(regularized_gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-10));
        }
        // Monotone in x.
        assert!(regularized_gamma_p(2.5, 1.0) < regularized_gamma_p(2.5, 2.0));
    }

    #[test]
    fn chi2_cdf_known_values() {
        // CDF of χ²(2) is 1 - exp(-x/2).
        for x in [0.5, 1.0, 3.0, 8.0] {
            assert!(close(chi2_cdf(x, 2), 1.0 - (-x / 2.0f64).exp(), 1e-10));
        }
        assert_eq!(chi2_cdf(0.0, 5), 0.0);
    }

    #[test]
    fn chi2_quantile_table_values() {
        // Standard table values.
        let cases = [
            (0.95, 1, 3.841),
            (0.99, 1, 6.635),
            (0.95, 2, 5.991),
            (0.99, 2, 9.210),
            (0.95, 5, 11.070),
            (0.99, 10, 23.209),
            (0.99, 26, 45.642),
        ];
        for (p, dof, expected) in cases {
            assert!(
                close(chi2_quantile(p, dof), expected, 5e-3),
                "χ²_{p}({dof}) expected {expected}, got {}",
                chi2_quantile(p, dof)
            );
        }
    }

    #[test]
    fn chi2_quantile_inverts_cdf() {
        for dof in [1usize, 3, 7, 15, 26] {
            for p in [0.5, 0.9, 0.99, 0.999] {
                let q = chi2_quantile(p, dof);
                assert!(close(chi2_cdf(q, dof), p, 1e-9), "dof={dof} p={p}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn chi2_quantile_rejects_bad_probability() {
        let _ = chi2_quantile(1.0, 3);
    }

    #[test]
    fn normal_cdf_symmetry_and_values() {
        assert!(close(normal_cdf(0.0), 0.5, 1e-6));
        for x in [0.5, 1.0, 2.0, 3.0] {
            assert!(close(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-7));
        }
        assert!(close(normal_cdf(1.644854), 0.95, 1e-4));
        assert!(close(normal_cdf(2.326348), 0.99, 1e-4));
    }
}
