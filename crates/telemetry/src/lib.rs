//! Zero-dependency telemetry substrate for the CounterPoint pipeline.
//!
//! Every engineered hot path in the workspace — the batched dual simplex, the
//! Farkas-certificate pool, the parallel lattice frontier, the multiplexing
//! campaign runner — reports *what it did* through this crate: how many pivots
//! each LP solve took, how often a cached certificate refuted an observation
//! without touching the solver, how often a warm basis handed down the lattice
//! actually seeded a resolve.  The substrate has three parts:
//!
//! * a **metrics registry** ([`Metric`], [`Histogram`]) of process-global
//!   atomic counters and log₂-bucketed histograms, aggregated in a stable
//!   order so snapshots are deterministic across thread counts;
//! * hierarchical **spans** ([`span`], [`StageSpan`]) with deterministic
//!   FNV-1a identifiers and integer-microsecond timestamps, recorded as
//!   Chrome Trace Event `B`/`E` pairs;
//! * **exporters** on [`TelemetryReport`]: a compact JSON metrics snapshot
//!   ([`TelemetryReport::metrics_json`]) and a `chrome://tracing` /
//!   Perfetto-loadable trace dump ([`TelemetryReport::chrome_trace_json`]).
//!
//! Recording is **disabled by default** and the disabled fast path of every
//! instrumentation call is a single `Relaxed` atomic load — cheap enough to
//! leave the call sites in the hottest loops unconditionally.  A session
//! enables collection by claiming the process-wide sink with
//! [`Recording::start`] (or the non-blocking [`Recording::try_start`]) and
//! harvests everything recorded in between with [`Recording::finish`]:
//!
//! ```
//! use counterpoint_telemetry as telemetry;
//!
//! let recording = telemetry::Recording::start();
//! {
//!     let _span = telemetry::span("work", "unit-1");
//!     telemetry::add(telemetry::Metric::LpSolves, 1);
//!     telemetry::observe(telemetry::Histogram::LpPivotsPerSolve, 12);
//! }
//! let report = recording.finish();
//! assert_eq!(report.counter(telemetry::Metric::LpSolves), 1);
//! assert!(report.metrics_json().contains("\"lp_solves\":1"));
//! ```
//!
//! The crate is hand-rolled with no dependencies (like the workspace's other
//! vendored shims) so it can sit at the very bottom of the crate DAG: `lp`,
//! `core`, `collect` and `session` all instrument themselves against it
//! without cycles.
//!
//! # Determinism contract
//!
//! Counter and histogram updates are commutative, and the exporters emit them
//! in a fixed registry order, so a metrics snapshot taken over a
//! deterministic workload is byte-identical across runs and worker-thread
//! counts.  Two recorded quantities are exempt and documented as diagnostic:
//! span *timestamps* (wall-clock by nature; the trace exporter is for humans
//! and Perfetto, not for diffing) and [`TelemetryReport::per_worker_frontier_models`]
//! (the dynamic work split across lattice workers depends on scheduling; only
//! its *order* — worker index — and its *total* are stable).

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

// ---------------------------------------------------------------------------
// The gate.
// ---------------------------------------------------------------------------

/// Whether a [`Recording`] is active.  Every instrumentation helper loads this
/// once with `Relaxed` ordering and returns immediately when it is false —
/// that load is the entire cost of disabled telemetry.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Returns true while a [`Recording`] is active.
///
/// Instrumentation sites that need to do non-trivial preparation (formatting
/// a span key, say) can consult this first; the plain [`add`]/[`observe`]/
/// [`span`] helpers already check it internally.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Metrics registry: counters.
// ---------------------------------------------------------------------------

/// The registry of monotonic event counters.
///
/// The variants enumerate every count the pipeline reports; snapshots list
/// them in this (declaration) order so output is stable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// LP feasibility solves driven to completion by the dual simplex.
    LpSolves,
    /// Simplex pivots performed while restoring feasibility.
    LpPivots,
    /// Basis refactorizations (product-form resets to the slack identity).
    LpRefactorizations,
    /// Pivots replayed while re-seating a handed-down basis.
    LpBasisReplayPivots,
    /// Lattice evaluations that received a warm basis from a parent model.
    WarmBasisHandoffHits,
    /// Lattice evaluations that found no compatible parent basis.
    WarmBasisHandoffMisses,
    /// Observations refuted by a cached Farkas certificate without an LP solve.
    CertificatePrunes,
    /// Observations settled feasible by a cached witness ray without an LP solve.
    WitnessRaySettlements,
    /// Batch-feasibility calls that reused the cached coefficient matrix.
    CoefficientCacheHits,
    /// Batch-feasibility calls that had to rebuild the coefficient matrix.
    CoefficientCacheMisses,
    /// Warm-started solves that failed and fell back to a cold solver chain.
    ColdSolverFallbacks,
    /// Lattice frontier batches dispatched to the worker pool.
    FrontierBatches,
    /// Models evaluated across all lattice frontier batches.
    FrontierModelsEvaluated,
    /// Campaign cells executed.
    CampaignCells,
    /// Multiplexing rounds planned across all event schedules.
    ScheduleRounds,
    /// Events beyond physical-counter capacity (multiplexed, not dropped).
    ScheduleOversubscribedEvents,
    /// Schedules whose noise inflation exceeded the warning threshold.
    ScheduleInflationWarnings,
    /// Fast (tier-1) feasibility solves whose verdict margin was too thin and
    /// were re-run on the exact tier-2 engine.
    LpTier2Escalations,
    /// Harvested certificates or witness rays whose float margin was
    /// near-degenerate and were re-verified in exact rational arithmetic.
    LpExactRecertifications,
    /// Enumerated model candidates skipped because their μDD exceeded the
    /// configured path limit.
    PathLimitModelSkips,
    /// LP decisions that exhausted every solve path without converging and
    /// reported an inconclusive verdict instead of a decision.
    LpInconclusiveVerdicts,
    /// Pooled Farkas certificates harvested in one model family that pruned
    /// an observation in a *different* family.
    CrossFamilyCertificateHits,
    /// Pooled witness rays harvested in one model family that settled an
    /// observation feasible in a *different* family.
    CrossFamilyWitnessHits,
}

impl Metric {
    /// Every counter, in stable snapshot order.
    pub const ALL: [Metric; 23] = [
        Metric::LpSolves,
        Metric::LpPivots,
        Metric::LpRefactorizations,
        Metric::LpBasisReplayPivots,
        Metric::WarmBasisHandoffHits,
        Metric::WarmBasisHandoffMisses,
        Metric::CertificatePrunes,
        Metric::WitnessRaySettlements,
        Metric::CoefficientCacheHits,
        Metric::CoefficientCacheMisses,
        Metric::ColdSolverFallbacks,
        Metric::FrontierBatches,
        Metric::FrontierModelsEvaluated,
        Metric::CampaignCells,
        Metric::ScheduleRounds,
        Metric::ScheduleOversubscribedEvents,
        Metric::ScheduleInflationWarnings,
        Metric::LpTier2Escalations,
        Metric::LpExactRecertifications,
        Metric::PathLimitModelSkips,
        Metric::LpInconclusiveVerdicts,
        Metric::CrossFamilyCertificateHits,
        Metric::CrossFamilyWitnessHits,
    ];

    /// The snake_case name used in metrics snapshots.
    pub fn name(self) -> &'static str {
        match self {
            Metric::LpSolves => "lp_solves",
            Metric::LpPivots => "lp_pivots",
            Metric::LpRefactorizations => "lp_refactorizations",
            Metric::LpBasisReplayPivots => "lp_basis_replay_pivots",
            Metric::WarmBasisHandoffHits => "warm_basis_handoff_hits",
            Metric::WarmBasisHandoffMisses => "warm_basis_handoff_misses",
            Metric::CertificatePrunes => "certificate_prunes",
            Metric::WitnessRaySettlements => "witness_ray_settlements",
            Metric::CoefficientCacheHits => "coefficient_cache_hits",
            Metric::CoefficientCacheMisses => "coefficient_cache_misses",
            Metric::ColdSolverFallbacks => "cold_solver_fallbacks",
            Metric::FrontierBatches => "frontier_batches",
            Metric::FrontierModelsEvaluated => "frontier_models_evaluated",
            Metric::CampaignCells => "campaign_cells",
            Metric::ScheduleRounds => "schedule_rounds",
            Metric::ScheduleOversubscribedEvents => "schedule_oversubscribed_events",
            Metric::ScheduleInflationWarnings => "schedule_inflation_warnings",
            Metric::LpTier2Escalations => "lp_tier2_escalations",
            Metric::LpExactRecertifications => "lp_exact_recertifications",
            Metric::PathLimitModelSkips => "path_limit_model_skips",
            Metric::LpInconclusiveVerdicts => "lp_inconclusive_verdicts",
            Metric::CrossFamilyCertificateHits => "cross_family_certificate_hits",
            Metric::CrossFamilyWitnessHits => "cross_family_witness_hits",
        }
    }
}

const METRIC_COUNT: usize = Metric::ALL.len();

static COUNTERS: [AtomicU64; METRIC_COUNT] = [const { AtomicU64::new(0) }; METRIC_COUNT];

/// Adds `n` to a counter.  A no-op (one relaxed load) when telemetry is off.
#[inline]
pub fn add(metric: Metric, n: u64) {
    if !enabled() {
        return;
    }
    COUNTERS[metric as usize].fetch_add(n, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Metrics registry: histograms.
// ---------------------------------------------------------------------------

/// The registry of log₂-bucketed value distributions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Histogram {
    /// Pivots needed by each completed LP feasibility solve.
    LpPivotsPerSolve,
    /// Models per lattice frontier batch.
    FrontierBatchSize,
}

impl Histogram {
    /// Every histogram, in stable snapshot order.
    pub const ALL: [Histogram; 2] = [Histogram::LpPivotsPerSolve, Histogram::FrontierBatchSize];

    /// The snake_case name used in metrics snapshots.
    pub fn name(self) -> &'static str {
        match self {
            Histogram::LpPivotsPerSolve => "lp_pivots_per_solve",
            Histogram::FrontierBatchSize => "frontier_batch_size",
        }
    }
}

const HISTOGRAM_COUNT: usize = Histogram::ALL.len();

/// Bucket `b` holds values whose bit length is `b` (bucket 0 holds the value
/// 0, bucket 1 holds 1, bucket 2 holds 2–3, …); everything of 32 bits or more
/// lands in the final bucket.
const HISTOGRAM_BUCKETS: usize = 33;

struct HistogramStore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

static HISTOGRAMS: [HistogramStore; HISTOGRAM_COUNT] = [const {
    HistogramStore {
        buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        count: AtomicU64::new(0),
        sum: AtomicU64::new(0),
    }
}; HISTOGRAM_COUNT];

fn bucket_of(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Records one observation of `value`.  A no-op when telemetry is off.
#[inline]
pub fn observe(histogram: Histogram, value: u64) {
    if !enabled() {
        return;
    }
    let store = &HISTOGRAMS[histogram as usize];
    store.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    store.count.fetch_add(1, Ordering::Relaxed);
    store.sum.fetch_add(value, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Per-worker gauges.
// ---------------------------------------------------------------------------

/// Models processed per lattice worker index, across all frontier batches.
/// Written by the lattice driver after each batch joins, in worker-index
/// order, so the vector layout is stable.
static WORKER_FRONTIER: Mutex<Vec<u64>> = Mutex::new(Vec::new());

/// Credits `models` frontier evaluations to lattice worker `worker`.
///
/// Call from the batch driver after the worker scope joins, iterating
/// workers in index order: the snapshot then lists workers in a stable order
/// even though the dynamic work split between them is scheduling-dependent.
pub fn add_worker_frontier_models(worker: usize, models: u64) {
    if !enabled() {
        return;
    }
    let mut gauges = lock(&WORKER_FRONTIER);
    if gauges.len() <= worker {
        gauges.resize(worker + 1, 0);
    }
    gauges[worker] += models;
}

// ---------------------------------------------------------------------------
// Structured warnings.
// ---------------------------------------------------------------------------

/// A structured warning recorded by an instrumented subsystem.
///
/// Warnings are aggregated at snapshot time: identical `(kind, message)`
/// pairs merge into one entry with a [`count`](Warning::count), and entries
/// sort by kind then message, so the snapshot is deterministic even when the
/// emitting code runs across worker threads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Warning {
    /// Machine-readable category, e.g. `schedule_noise_inflation`.
    pub kind: &'static str,
    /// Human-readable description with the offending values interpolated.
    pub message: String,
    /// How many times this exact warning was emitted during the recording.
    pub count: u64,
}

static WARNINGS: Mutex<Vec<(&'static str, String)>> = Mutex::new(Vec::new());

/// Records a structured warning.  A no-op when telemetry is off.
pub fn warn(kind: &'static str, message: String) {
    if !enabled() {
        return;
    }
    lock(&WARNINGS).push((kind, message));
}

// ---------------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------------

/// One Chrome Trace Event (`ph` is `B` for span begin, `E` for span end).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (the instrumentation site, e.g. `model_sweep`).
    pub name: &'static str,
    /// Event phase: `'B'` opens a span, `'E'` closes the most recent open
    /// span on the same logical thread.
    pub phase: char,
    /// Microseconds since the process-wide trace epoch.
    pub ts_us: u64,
    /// Logical thread id (assigned densely per OS thread, first use wins).
    pub tid: u64,
    /// Deterministic span id: FNV-1a over the parent span's id, the span
    /// name, and the key.  Identical on both the `B` and `E` event.
    pub id: u64,
    /// Site-specific key (model name, cell label, batch index, …).
    pub key: String,
}

static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

fn thread_tid() -> u64 {
    TID.with(|cell| {
        let mut tid = cell.get();
        if tid == 0 {
            tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            cell.set(tid);
        }
        tid
    })
}

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    if hash == 0 {
        hash = 0xcbf2_9ce4_8422_2325;
    }
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// An RAII guard for an open span: records a `B` event on creation (when
/// telemetry is on) and the matching `E` event on drop.  Keep it on the
/// thread that created it — `B`/`E` pairs are matched per logical thread.
#[derive(Debug)]
pub struct Span {
    live: bool,
    name: &'static str,
    id: u64,
    tid: u64,
}

/// Opens a span.  `key` distinguishes instances of the same site (a model
/// name, a cell label, a batch index); pass `""` when the site is unique.
///
/// The span id is FNV-1a over the innermost enclosing span's id on this
/// thread, the name, and the key — deterministic across runs and thread
/// counts for deterministic keys.  A no-op guard (one relaxed load, no
/// allocation) when telemetry is off.
pub fn span(name: &'static str, key: &str) -> Span {
    if !enabled() {
        return Span {
            live: false,
            name,
            id: 0,
            tid: 0,
        };
    }
    let tid = thread_tid();
    let parent = SPAN_STACK.with(|stack| stack.borrow().last().copied().unwrap_or(0));
    let mut id = fnv1a(parent, name.as_bytes());
    id = fnv1a(id, key.as_bytes());
    SPAN_STACK.with(|stack| stack.borrow_mut().push(id));
    lock(&EVENTS).push(TraceEvent {
        name,
        phase: 'B',
        ts_us: now_us(),
        tid,
        id,
        key: key.to_string(),
    });
    Span {
        live: true,
        name,
        id,
        tid,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        lock(&EVENTS).push(TraceEvent {
            name: self.name,
            phase: 'E',
            ts_us: now_us(),
            tid: self.tid,
            id: self.id,
            key: String::new(),
        });
    }
}

/// A span that always measures wall-clock time, even with telemetry off.
///
/// Pipeline stages report their durations (the session layer's per-stage
/// timings) through this type so the numbers exist unconditionally, while
/// the underlying [`Span`] only reaches the trace when a recording is
/// active.
#[derive(Debug)]
pub struct StageSpan {
    start: Instant,
    _span: Span,
}

/// Opens a stage span (see [`StageSpan`]).
pub fn stage_span(name: &'static str) -> StageSpan {
    StageSpan {
        start: Instant::now(),
        _span: span(name, ""),
    }
}

impl StageSpan {
    /// Closes the span and returns the elapsed wall-clock milliseconds.
    pub fn finish_ms(self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }
}

// ---------------------------------------------------------------------------
// Recording lifecycle.
// ---------------------------------------------------------------------------

static CLAIM: Mutex<()> = Mutex::new(());

/// Exclusive ownership of the process-wide telemetry sink.
///
/// Only one recording exists at a time: [`Recording::start`] blocks until the
/// sink is free (serialising concurrent test recordings), while
/// [`Recording::try_start`] returns `None` when another recording is already
/// active — instrumentation keeps flowing into *that* recording, so a nested
/// session simply contributes to its enclosing one.
#[derive(Debug)]
pub struct Recording {
    _claim: MutexGuard<'static, ()>,
}

fn reset_sink() {
    for counter in &COUNTERS {
        counter.store(0, Ordering::Relaxed);
    }
    for store in &HISTOGRAMS {
        for bucket in &store.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        store.count.store(0, Ordering::Relaxed);
        store.sum.store(0, Ordering::Relaxed);
    }
    lock(&WORKER_FRONTIER).clear();
    lock(&WARNINGS).clear();
    lock(&EVENTS).clear();
}

impl Recording {
    /// Claims the sink, resets it, and enables collection.  Blocks while
    /// another recording is active.
    pub fn start() -> Recording {
        let claim = lock(&CLAIM);
        EPOCH.get_or_init(Instant::now);
        reset_sink();
        ACTIVE.store(true, Ordering::SeqCst);
        Recording { _claim: claim }
    }

    /// Like [`Recording::start`], but returns `None` instead of blocking when
    /// the sink is already claimed (including by the calling thread).
    pub fn try_start() -> Option<Recording> {
        let claim = CLAIM.try_lock().ok()?;
        EPOCH.get_or_init(Instant::now);
        reset_sink();
        ACTIVE.store(true, Ordering::SeqCst);
        Some(Recording { _claim: claim })
    }

    /// Disables collection and returns everything recorded.
    pub fn finish(self) -> TelemetryReport {
        ACTIVE.store(false, Ordering::SeqCst);
        let counters = Metric::ALL
            .iter()
            .map(|&m| (m.name(), COUNTERS[m as usize].load(Ordering::Relaxed)))
            .collect();
        let histograms = Histogram::ALL
            .iter()
            .map(|&h| {
                let store = &HISTOGRAMS[h as usize];
                HistogramSnapshot {
                    name: h.name(),
                    count: store.count.load(Ordering::Relaxed),
                    sum: store.sum.load(Ordering::Relaxed),
                    buckets: store
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(bits, bucket)| {
                            let n = bucket.load(Ordering::Relaxed);
                            (n > 0).then_some((bits as u32, n))
                        })
                        .collect(),
                }
            })
            .collect();
        let per_worker_frontier_models = lock(&WORKER_FRONTIER).clone();
        let mut raw_warnings = lock(&WARNINGS).clone();
        raw_warnings.sort();
        let mut warnings: Vec<Warning> = Vec::new();
        for (kind, message) in raw_warnings {
            match warnings.last_mut() {
                Some(last) if last.kind == kind && last.message == message => last.count += 1,
                _ => warnings.push(Warning {
                    kind,
                    message,
                    count: 1,
                }),
            }
        }
        let events = lock(&EVENTS).clone();
        TelemetryReport {
            counters,
            histograms,
            per_worker_frontier_models,
            warnings,
            events,
        }
    }
}

impl Drop for Recording {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------------
// Snapshot + exporters.
// ---------------------------------------------------------------------------

/// One histogram's state at the end of a recording.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registry name (see [`Histogram::name`]).
    pub name: &'static str,
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Non-empty log₂ buckets as `(bit length, observations)` pairs, in
    /// ascending bit-length order.
    pub buckets: Vec<(u32, u64)>,
}

/// Everything one [`Recording`] collected.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryReport {
    /// Counter values in [`Metric::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// Histogram snapshots in [`Histogram::ALL`] order.
    pub histograms: Vec<HistogramSnapshot>,
    /// Frontier models processed per lattice worker index (diagnostic: the
    /// split is scheduling-dependent, the order and total are not).
    pub per_worker_frontier_models: Vec<u64>,
    /// Aggregated structured warnings, sorted by kind then message.
    pub warnings: Vec<Warning>,
    /// The raw span events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl TelemetryReport {
    /// Looks up one counter's final value.
    pub fn counter(&self, metric: Metric) -> u64 {
        self.counters[metric as usize].1
    }

    /// Looks up one histogram's snapshot.
    pub fn histogram(&self, histogram: Histogram) -> &HistogramSnapshot {
        &self.histograms[histogram as usize]
    }

    /// The metrics snapshot as compact JSON.
    ///
    /// Emits counters, histograms, per-worker gauges and warnings — not the
    /// span events (see [`chrome_trace_json`](TelemetryReport::chrome_trace_json)).
    /// All values are integers or strings, and everything is ordered by the
    /// fixed registries, so the snapshot of a deterministic workload is
    /// byte-identical across runs and thread counts.
    pub fn metrics_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, hist) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, hist.name);
            out.push_str(":{\"count\":");
            out.push_str(&hist.count.to_string());
            out.push_str(",\"sum\":");
            out.push_str(&hist.sum.to_string());
            out.push_str(",\"buckets\":{");
            for (j, (bits, n)) in hist.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_string(&mut out, &bits.to_string());
                out.push(':');
                out.push_str(&n.to_string());
            }
            out.push_str("}}");
        }
        out.push_str("},\"per_worker_frontier_models\":[");
        for (i, n) in self.per_worker_frontier_models.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&n.to_string());
        }
        out.push_str("],\"warnings\":[");
        for (i, warning) in self.warnings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"kind\":");
            push_json_string(&mut out, warning.kind);
            out.push_str(",\"message\":");
            push_json_string(&mut out, &warning.message);
            out.push_str(",\"count\":");
            out.push_str(&warning.count.to_string());
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// The span dump in Chrome Trace Event Format (the JSON object form,
    /// `{"traceEvents":[...]}`), loadable by `chrome://tracing` and
    /// [Perfetto](https://ui.perfetto.dev).
    ///
    /// Every value is an integer or a string, so parsing the dump with a
    /// JSON library that preserves key order and re-serialising it compactly
    /// reproduces the bytes exactly.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"traceEvents\":[");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_string(&mut out, event.name);
            out.push_str(",\"cat\":\"counterpoint\",\"ph\":");
            push_json_string(&mut out, &event.phase.to_string());
            out.push_str(",\"ts\":");
            out.push_str(&event.ts_us.to_string());
            out.push_str(",\"pid\":1,\"tid\":");
            out.push_str(&event.tid.to_string());
            out.push_str(",\"args\":{\"id\":");
            out.push_str(&event.id.to_string());
            out.push_str(",\"key\":");
            push_json_string(&mut out, &event.key);
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Writes `<prefix>.metrics.json` and `<prefix>.trace.json`, returning
    /// the two paths.
    pub fn write_files(&self, prefix: &str) -> std::io::Result<(String, String)> {
        let metrics_path = format!("{prefix}.metrics.json");
        let trace_path = format!("{prefix}.trace.json");
        std::fs::write(&metrics_path, self.metrics_json() + "\n")?;
        std::fs::write(&trace_path, self.chrome_trace_json() + "\n")?;
        Ok((metrics_path, trace_path))
    }
}

/// Appends `s` as a JSON string literal, with the same escaping rules as the
/// workspace's vendored `serde_json` (so round-tripping through it is
/// byte-exact): `"`, `\`, `\n`, `\r`, `\t`, and `\u00XX` for other control
/// characters.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        // Hold the claim directly (without enabling collection) so no other
        // test can be mid-recording while this one emits: every helper below
        // must hit the disabled fast path and record nothing at all.
        let _guard = lock(&CLAIM);
        reset_sink();
        add(Metric::LpPivots, 5);
        observe(Histogram::LpPivotsPerSolve, 5);
        warn("test", "dropped".to_string());
        add_worker_frontier_models(0, 3);
        {
            let _span = span("dropped", "");
        }
        assert_eq!(
            COUNTERS[Metric::LpPivots as usize].load(Ordering::Relaxed),
            0
        );
        let store = &HISTOGRAMS[Histogram::LpPivotsPerSolve as usize];
        assert_eq!(store.count.load(Ordering::Relaxed), 0);
        assert!(lock(&WORKER_FRONTIER).is_empty());
        assert!(lock(&WARNINGS).is_empty());
        assert!(lock(&EVENTS).is_empty());
    }

    #[test]
    fn counters_histograms_and_warnings_accumulate() {
        let recording = Recording::start();
        add(Metric::CertificatePrunes, 3);
        add(Metric::CertificatePrunes, 4);
        observe(Histogram::LpPivotsPerSolve, 0);
        observe(Histogram::LpPivotsPerSolve, 1);
        observe(Histogram::LpPivotsPerSolve, 6);
        observe(Histogram::LpPivotsPerSolve, 7);
        warn("k", "b".to_string());
        warn("k", "a".to_string());
        warn("k", "b".to_string());
        add_worker_frontier_models(1, 4);
        add_worker_frontier_models(0, 2);
        let report = recording.finish();
        assert_eq!(report.counter(Metric::CertificatePrunes), 7);
        let hist = report.histogram(Histogram::LpPivotsPerSolve);
        assert_eq!(hist.count, 4);
        assert_eq!(hist.sum, 14);
        // 0 → bucket 0, 1 → bucket 1, 6 and 7 → bucket 3.
        assert_eq!(hist.buckets, vec![(0, 1), (1, 1), (3, 2)]);
        // Warnings sort and merge.
        assert_eq!(report.warnings.len(), 2);
        assert_eq!(report.warnings[0].message, "a");
        assert_eq!(report.warnings[1].count, 2);
        // Worker gauges keep index order regardless of write order.
        assert_eq!(report.per_worker_frontier_models, vec![2, 4]);
    }

    #[test]
    fn spans_nest_with_deterministic_ids() {
        let recording = Recording::start();
        {
            let _outer = span("outer", "");
            let _inner = span("inner", "x");
        }
        let first = recording.finish();

        let recording = Recording::start();
        {
            let _outer = span("outer", "");
            let _inner = span("inner", "x");
        }
        let second = recording.finish();

        assert_eq!(first.events.len(), 4);
        let phases: Vec<char> = first.events.iter().map(|e| e.phase).collect();
        assert_eq!(phases, vec!['B', 'B', 'E', 'E']);
        // Same hierarchy → same ids across recordings.
        let ids = |r: &TelemetryReport| -> Vec<u64> { r.events.iter().map(|e| e.id).collect() };
        assert_eq!(ids(&first), ids(&second));
        // B/E pairs share ids; parent and child differ.
        assert_eq!(first.events[0].id, first.events[3].id);
        assert_eq!(first.events[1].id, first.events[2].id);
        assert_ne!(first.events[0].id, first.events[1].id);
    }

    #[test]
    fn stage_span_measures_even_when_disabled() {
        // Claim (without recording) so the stage's inner span cannot leak
        // into a concurrent test's recording.
        let _guard = lock(&CLAIM);
        let stage = stage_span("stage");
        assert!(stage.finish_ms() >= 0.0);
    }

    #[test]
    fn try_start_yields_to_an_active_recording() {
        let recording = Recording::start();
        assert!(Recording::try_start().is_none());
        add(Metric::LpSolves, 1);
        let report = recording.finish();
        assert_eq!(report.counter(Metric::LpSolves), 1);
        // Once released, the sink can be claimed again.
        let again = Recording::try_start().expect("sink is free");
        assert_eq!(again.finish().counter(Metric::LpSolves), 0);
    }

    #[test]
    fn metrics_json_is_all_integer_and_ordered() {
        let recording = Recording::start();
        add(Metric::LpSolves, 2);
        warn("kind", "needs \"escaping\"\n".to_string());
        let json = recording.finish().metrics_json();
        assert!(json.starts_with("{\"counters\":{\"lp_solves\":2,"));
        assert!(json.contains("\"needs \\\"escaping\\\"\\n\""));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn chrome_trace_json_shape() {
        let recording = Recording::start();
        {
            let _span = span("unit", "k");
        }
        let json = recording.finish().chrome_trace_json();
        assert!(json.starts_with(
            "{\"traceEvents\":[{\"name\":\"unit\",\"cat\":\"counterpoint\",\"ph\":\"B\","
        ));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.ends_with("}]}"));
    }
}
