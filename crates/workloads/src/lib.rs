//! Synthetic workloads for the Haswell MMU case study.
//!
//! The paper collects HEC data from GAPBS, SPEC2006, PARSEC and YCSB plus two
//! microbenchmarks (a linear access pattern parametrised by footprint, stride and
//! load/store ratio, and a random access pattern parametrised by footprint and
//! load/store ratio), sweeping memory footprints and page sizes.  This crate
//! provides access-trace generators spanning the same behavioural axes — spatial
//! locality, page reuse distance, load/store mix and footprint — so that the
//! simulated MMU is exercised across the same corners:
//!
//! * [`LinearAccess`] / [`RandomAccess`] — the paper's two microbenchmarks,
//! * [`GraphTraversal`] — GAPBS-like neighbour-list scans over a synthetic graph,
//! * [`PointerChase`] — SPEC-mcf-like dependent pointer chasing,
//! * [`Streaming`] — PARSEC-like multi-stream sequential processing with stores,
//! * [`KeyValue`] — YCSB-like Zipfian record accesses with a read/write mix.
//!
//! [`standard_suite`] assembles the parameter sweep used by the experiment
//! harness.

use counterpoint_haswell::mem::MemoryAccess;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A workload: a named generator of memory access traces.
///
/// Workloads are `Send + Sync` so a campaign runner can fan the same suite out
/// across worker threads (every generator here is a plain parameter struct;
/// generation state lives in locals).
pub trait Workload: Send + Sync {
    /// Human-readable name including the key parameters, used as the observation
    /// label in experiment reports.
    fn name(&self) -> String;

    /// Generates `num_accesses` memory accesses.
    fn generate(&self, num_accesses: usize) -> Vec<MemoryAccess>;
}

/// The linear-access microbenchmark: a loop over a buffer with a fixed stride and
/// load/store ratio (the paper's first microbenchmark, and the one whose
/// sequential page-crossing pattern triggers the TLB prefetcher).
#[derive(Clone, Debug)]
pub struct LinearAccess {
    /// Buffer size in bytes.
    pub footprint: u64,
    /// Stride between consecutive accesses in bytes.
    pub stride: u64,
    /// Fraction of accesses that are stores (0.0 – 1.0).
    pub store_ratio: f64,
}

impl Workload for LinearAccess {
    fn name(&self) -> String {
        format!(
            "linear(footprint={}MiB,stride={},stores={:.0}%)",
            self.footprint >> 20,
            self.stride,
            self.store_ratio * 100.0
        )
    }

    fn generate(&self, num_accesses: usize) -> Vec<MemoryAccess> {
        let steps = (self.footprint / self.stride).max(1);
        let mut rng = StdRng::seed_from_u64(17);
        (0..num_accesses as u64)
            .map(|i| {
                let addr = (i % steps) * self.stride;
                if rng.gen_bool(self.store_ratio) {
                    MemoryAccess::store(addr)
                } else {
                    MemoryAccess::load(addr)
                }
            })
            .collect()
    }
}

/// The random-access microbenchmark: uniformly random addresses within the
/// footprint (the paper's second microbenchmark).
#[derive(Clone, Debug)]
pub struct RandomAccess {
    /// Buffer size in bytes.
    pub footprint: u64,
    /// Fraction of accesses that are stores.
    pub store_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Workload for RandomAccess {
    fn name(&self) -> String {
        format!(
            "random(footprint={}MiB,stores={:.0}%)",
            self.footprint >> 20,
            self.store_ratio * 100.0
        )
    }

    fn generate(&self, num_accesses: usize) -> Vec<MemoryAccess> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..num_accesses)
            .map(|_| {
                let addr = rng.gen_range(0..self.footprint) & !0x7;
                if rng.gen_bool(self.store_ratio) {
                    MemoryAccess::store(addr)
                } else {
                    MemoryAccess::load(addr)
                }
            })
            .collect()
    }
}

/// GAPBS-like graph traversal: repeatedly pick a vertex (skewed towards hubs) and
/// scan a short run of its neighbour list — a burst of spatially local accesses at
/// an essentially random page, which is the pattern that exercises walk merging and
/// early PDE-cache lookups.
#[derive(Clone, Debug)]
pub struct GraphTraversal {
    /// Number of vertices in the synthetic graph.
    pub vertices: u64,
    /// Average out-degree (length of the neighbour-list burst).
    pub avg_degree: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Workload for GraphTraversal {
    fn name(&self) -> String {
        format!("graph(v={},deg={})", self.vertices, self.avg_degree)
    }

    fn generate(&self, num_accesses: usize) -> Vec<MemoryAccess> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(num_accesses);
        // Neighbour lists live in an edge array of 8-byte vertex ids; vertex v's
        // list starts at v * avg_degree * 8.
        while out.len() < num_accesses {
            // Skew vertex selection: square a uniform variate to prefer low ids
            // ("hub" vertices), as degree-skewed graphs do.
            let u: f64 = rng.gen();
            let vertex = ((u * u) * self.vertices as f64) as u64;
            let burst = rng.gen_range(1..=self.avg_degree.max(1) * 2);
            let base = vertex * self.avg_degree * 8;
            for n in 0..burst {
                if out.len() >= num_accesses {
                    break;
                }
                // Read the neighbour id (sequential within the list)...
                out.push(MemoryAccess::load(base + n * 8));
                // ...and occasionally the neighbour's per-vertex data (random page).
                if rng.gen_bool(0.25) && out.len() < num_accesses {
                    let neighbour = rng.gen_range(0..self.vertices);
                    out.push(MemoryAccess::load(0x4000_0000_0000 + neighbour * 64));
                }
            }
        }
        out
    }
}

/// SPEC-mcf-like pointer chasing: follow a pseudo-random permutation through a
/// large node array, one dependent access per node — minimal spatial locality and a
/// very high TLB miss rate.
#[derive(Clone, Debug)]
pub struct PointerChase {
    /// Number of 64-byte nodes in the arena.
    pub nodes: u64,
    /// RNG seed (also determines the permutation).
    pub seed: u64,
}

impl Workload for PointerChase {
    fn name(&self) -> String {
        format!("pointer_chase(nodes={})", self.nodes)
    }

    fn generate(&self, num_accesses: usize) -> Vec<MemoryAccess> {
        let mut state = self.seed | 1;
        let mut out = Vec::with_capacity(num_accesses);
        let mut current = 0u64;
        for _ in 0..num_accesses {
            out.push(MemoryAccess::load(current * 64));
            // Next node from a multiplicative congruential step (cheap stand-in for
            // an actual stored permutation).
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            current = (state >> 11) % self.nodes.max(1);
        }
        out
    }
}

/// PARSEC-like streaming: several sequential input streams read in round-robin
/// with a store-heavy output stream.
#[derive(Clone, Debug)]
pub struct Streaming {
    /// Number of concurrent input streams.
    pub streams: u64,
    /// Length of each stream in bytes.
    pub stream_bytes: u64,
}

impl Workload for Streaming {
    fn name(&self) -> String {
        format!(
            "streaming(streams={},len={}MiB)",
            self.streams,
            self.stream_bytes >> 20
        )
    }

    fn generate(&self, num_accesses: usize) -> Vec<MemoryAccess> {
        let mut out = Vec::with_capacity(num_accesses);
        let mut offsets = vec![0u64; self.streams as usize];
        let mut i = 0usize;
        while out.len() < num_accesses {
            let s = i % self.streams as usize;
            let base = s as u64 * self.stream_bytes;
            out.push(MemoryAccess::load(base + offsets[s]));
            // Every fourth access writes to the output stream.
            if i % 4 == 3 && out.len() < num_accesses {
                let out_base = self.streams * self.stream_bytes;
                out.push(MemoryAccess::store(out_base + offsets[s]));
            }
            offsets[s] = (offsets[s] + 64) % self.stream_bytes;
            i += 1;
        }
        out
    }
}

/// YCSB-like key-value workload: Zipfian record selection, a few field accesses per
/// record, and a configurable update fraction.
#[derive(Clone, Debug)]
pub struct KeyValue {
    /// Number of records in the store.
    pub records: u64,
    /// Size of one record in bytes.
    pub record_bytes: u64,
    /// Fraction of operations that are updates (stores).
    pub update_ratio: f64,
    /// Zipfian skew parameter (0 = uniform; 0.99 = YCSB default).
    pub zipf_theta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Workload for KeyValue {
    fn name(&self) -> String {
        format!(
            "kv(records={},update={:.0}%,theta={})",
            self.records,
            self.update_ratio * 100.0,
            self.zipf_theta
        )
    }

    fn generate(&self, num_accesses: usize) -> Vec<MemoryAccess> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(num_accesses);
        while out.len() < num_accesses {
            // Approximate Zipfian selection: u^(1/(1-theta)) concentrates mass on
            // low record ids as theta grows.
            let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
            let skew = if self.zipf_theta >= 1.0 {
                0.01
            } else {
                1.0 - self.zipf_theta
            };
            let record = ((u.powf(1.0 / skew)) * self.records as f64) as u64 % self.records.max(1);
            let base = record * self.record_bytes;
            let is_update = rng.gen_bool(self.update_ratio);
            // Touch two or three fields of the record.
            let fields = rng.gen_range(2..=3);
            for f in 0..fields {
                if out.len() >= num_accesses {
                    break;
                }
                let addr = base + f * 128;
                out.push(if is_update && f == 0 {
                    MemoryAccess::store(addr)
                } else {
                    MemoryAccess::load(addr)
                });
            }
        }
        out
    }
}

/// A named, boxed workload (convenience for building suites).
pub struct NamedWorkload {
    /// Observation label.
    pub label: String,
    /// The generator.
    pub workload: Box<dyn Workload>,
    /// Multiplier applied to the harness's per-workload access budget.  Workloads
    /// that only show their characteristic behaviour in a steady state (the
    /// 64-byte-stride linear scan must loop over its buffer many times before the
    /// TLB prefetcher dominates the walk counts) request a larger budget.
    pub access_scale: usize,
}

/// The standard workload suite used by the experiment harness: the two
/// microbenchmarks swept over footprint/stride, plus the four application-like
/// generators swept over footprint — a small-scale analogue of the paper's
/// GAPBS/SPEC/PARSEC/YCSB sweep.
pub fn standard_suite() -> Vec<NamedWorkload> {
    let mut suite: Vec<NamedWorkload> = Vec::new();
    // The prefetcher-exercising linear microbenchmark: 64-byte stride, looped over
    // the buffer many times so the prefetcher reaches steady state.
    let prefetch_linear = LinearAccess {
        footprint: 8 << 20,
        stride: 64,
        store_ratio: 0.0,
    };
    suite.push(NamedWorkload {
        label: prefetch_linear.name(),
        workload: Box::new(prefetch_linear),
        access_scale: 40,
    });
    // Linear microbenchmark: footprint x stride sweep (coarser strides exercise
    // walk merging without triggering the prefetcher).
    for footprint in [8u64 << 20, 64 << 20, 512 << 20] {
        for stride in [256u64, 4096] {
            let w = LinearAccess {
                footprint,
                stride,
                store_ratio: 0.0,
            };
            suite.push(NamedWorkload {
                label: w.name(),
                workload: Box::new(w),
                access_scale: 1,
            });
        }
    }
    // Store-only linear variant (used by the prefetch-trigger analysis).
    let store_linear = LinearAccess {
        footprint: 64 << 20,
        stride: 64,
        store_ratio: 1.0,
    };
    suite.push(NamedWorkload {
        label: store_linear.name(),
        workload: Box::new(store_linear),
        access_scale: 1,
    });
    // Random microbenchmark: footprint sweep.
    for footprint in [16u64 << 20, 256 << 20, 4 << 30] {
        let w = RandomAccess {
            footprint,
            store_ratio: 0.2,
            seed: footprint,
        };
        suite.push(NamedWorkload {
            label: w.name(),
            workload: Box::new(w),
            access_scale: 1,
        });
    }
    // Application-like workloads.
    for (vertices, degree) in [(200_000u64, 8u64), (2_000_000, 16)] {
        let w = GraphTraversal {
            vertices,
            avg_degree: degree,
            seed: vertices,
        };
        suite.push(NamedWorkload {
            label: w.name(),
            workload: Box::new(w),
            access_scale: 1,
        });
    }
    for nodes in [500_000u64, 8_000_000] {
        let w = PointerChase {
            nodes,
            seed: nodes | 1,
        };
        suite.push(NamedWorkload {
            label: w.name(),
            workload: Box::new(w),
            access_scale: 1,
        });
    }
    let streaming = Streaming {
        streams: 4,
        stream_bytes: 32 << 20,
    };
    suite.push(NamedWorkload {
        label: streaming.name(),
        workload: Box::new(streaming),
        access_scale: 1,
    });
    for update_ratio in [0.05f64, 0.5] {
        let w = KeyValue {
            records: 2_000_000,
            record_bytes: 1024,
            update_ratio,
            zipf_theta: 0.99,
            seed: 99,
        };
        suite.push(NamedWorkload {
            label: w.name(),
            workload: Box::new(w),
            access_scale: 1,
        });
    }
    suite
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn linear_access_is_strided_and_wraps() {
        let w = LinearAccess {
            footprint: 1024,
            stride: 64,
            store_ratio: 0.0,
        };
        let trace = w.generate(40);
        assert_eq!(trace.len(), 40);
        assert_eq!(trace[0].addr.raw(), 0);
        assert_eq!(trace[1].addr.raw(), 64);
        // Wraps after footprint / stride = 16 accesses.
        assert_eq!(trace[16].addr.raw(), 0);
        assert!(trace.iter().all(|a| !a.is_store));
        assert!(w.name().contains("stride=64"));
    }

    #[test]
    fn linear_access_store_ratio_generates_stores() {
        let w = LinearAccess {
            footprint: 1 << 20,
            stride: 64,
            store_ratio: 1.0,
        };
        assert!(w.generate(100).iter().all(|a| a.is_store));
        let mixed = LinearAccess {
            footprint: 1 << 20,
            stride: 64,
            store_ratio: 0.5,
        };
        let trace = mixed.generate(1000);
        let stores = trace.iter().filter(|a| a.is_store).count();
        assert!(stores > 300 && stores < 700);
    }

    #[test]
    fn random_access_stays_within_footprint() {
        let w = RandomAccess {
            footprint: 1 << 20,
            store_ratio: 0.3,
            seed: 7,
        };
        let trace = w.generate(5000);
        assert!(trace.iter().all(|a| a.addr.raw() < (1 << 20)));
        let distinct_pages: HashSet<u64> = trace.iter().map(|a| a.addr.raw() >> 12).collect();
        assert!(distinct_pages.len() > 100);
    }

    #[test]
    fn random_access_is_deterministic_per_seed() {
        let a = RandomAccess {
            footprint: 1 << 24,
            store_ratio: 0.1,
            seed: 3,
        }
        .generate(100);
        let b = RandomAccess {
            footprint: 1 << 24,
            store_ratio: 0.1,
            seed: 3,
        }
        .generate(100);
        let c = RandomAccess {
            footprint: 1 << 24,
            store_ratio: 0.1,
            seed: 4,
        }
        .generate(100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn graph_traversal_produces_bursts() {
        let w = GraphTraversal {
            vertices: 10_000,
            avg_degree: 8,
            seed: 5,
        };
        let trace = w.generate(2000);
        assert_eq!(trace.len(), 2000);
        // Bursts mean consecutive accesses to the same page are common.
        let same_page_pairs = trace
            .windows(2)
            .filter(|p| p[0].addr.raw() >> 12 == p[1].addr.raw() >> 12)
            .count();
        assert!(same_page_pairs > 400);
    }

    #[test]
    fn pointer_chase_has_poor_locality() {
        let w = PointerChase {
            nodes: 1_000_000,
            seed: 11,
        };
        let trace = w.generate(5000);
        let same_page_pairs = trace
            .windows(2)
            .filter(|p| p[0].addr.raw() >> 12 == p[1].addr.raw() >> 12)
            .count();
        assert!(same_page_pairs < 500);
    }

    #[test]
    fn streaming_mixes_loads_and_stores() {
        let w = Streaming {
            streams: 4,
            stream_bytes: 1 << 20,
        };
        let trace = w.generate(4000);
        let stores = trace.iter().filter(|a| a.is_store).count();
        assert!(stores > 0);
        assert!(stores < trace.len() / 2);
        assert_eq!(trace.len(), 4000);
    }

    #[test]
    fn key_value_is_skewed() {
        let w = KeyValue {
            records: 100_000,
            record_bytes: 1024,
            update_ratio: 0.2,
            zipf_theta: 0.99,
            seed: 1,
        };
        let trace = w.generate(10_000);
        // With heavy skew, a small set of hot records dominates.
        let hot = trace.iter().filter(|a| a.addr.raw() < 100 * 1024).count();
        assert!(
            hot > trace.len() / 10,
            "expected hot-record concentration, got {hot}"
        );
        assert!(trace.iter().any(|a| a.is_store));
    }

    #[test]
    fn standard_suite_is_diverse() {
        let suite = standard_suite();
        assert!(suite.len() >= 15);
        let labels: HashSet<&str> = suite.iter().map(|w| w.label.as_str()).collect();
        assert_eq!(labels.len(), suite.len(), "labels must be unique");
        // Every workload can actually generate a trace.
        for w in &suite {
            assert_eq!(w.workload.generate(64).len(), 64);
        }
    }
}
