//! Guided exploration of the Haswell MMU feature space (the paper's Section 5 and
//! Appendix C.1, condensed).
//!
//! One `Inquiry` session collects observations from the simulated Haswell MMU
//! running a reduced workload suite, then runs the discovery/elimination
//! refinement search over the five case-study features, reporting which
//! features every feasible model must include.
//!
//! Run with: `cargo run --release --example mmu_exploration`

use counterpoint::models::family::build_feature_model;
use counterpoint::models::harness::HarnessConfig;
use counterpoint::models::Feature;
use counterpoint::{FeatureSet, Inquiry};

fn main() {
    // Reduced-scale data collection (4 KiB pages, no multiplexing noise) so the
    // example finishes in a few seconds.
    let mut config = HarnessConfig::quick();
    config.accesses_per_workload = 60_000;

    let feature_names: Vec<&str> = Feature::ALL.iter().map(|f| f.name()).collect();
    println!("collecting observations from the simulated Haswell MMU ...");
    let report = Inquiry::new()
        .harness(config)
        .refine(
            |features: &FeatureSet| build_feature_model("candidate", features),
            &feature_names,
            FeatureSet::new(),
        )
        .run()
        .expect("the simulated harness cannot fail");
    println!("  {} observations collected", report.observations.len());

    println!("\nrunning discovery + elimination from the conventional-wisdom model ...");
    let graph = report
        .refinement
        .as_ref()
        .expect("the inquiry configured a refinement search");

    println!("\nexplored models:");
    for step in &graph.steps {
        println!(
            "  [{:?}] {{{}}} -> {} infeasible observation(s){}",
            step.phase,
            step.features.join(", "),
            step.infeasible_count,
            if step.feasible { "  (feasible)" } else { "" }
        );
    }

    println!("\nminimal feasible feature sets:");
    for set in &graph.minimal_feasible {
        println!("  {{{}}}", set.join(", "));
    }

    let essential = graph.essential_features();
    println!(
        "\nfeatures present in every feasible explored model: {{{}}}",
        essential.join(", ")
    );
    println!(
        "\n(The paper's conclusion: merging, early PSC lookup, walk bypassing and TLB \
         prefetching are required to explain Haswell's counter data; the PML4E cache is \
         compatible but only required when walk bypassing is not modelled.)"
    );
    println!(
        "\ntimings: collect {:.0} ms, evaluate {:.0} ms, refine {:.0} ms",
        report.stages.collect_ms, report.stages.evaluate_ms, report.stages.refine_ms
    );
}
