//! Guided exploration of the Haswell MMU feature space (the paper's Section 5 and
//! Appendix C.1, condensed).
//!
//! Collects observations from the simulated Haswell MMU running a reduced workload
//! suite, then runs the discovery/elimination search over the five case-study
//! features, reporting which features every feasible model must include.
//!
//! Run with: `cargo run --release --example mmu_exploration`

use counterpoint::models::family::build_feature_model;
use counterpoint::models::harness::{collect_case_study_observations, HarnessConfig};
use counterpoint::models::Feature;
use counterpoint::{FeatureSet, GuidedSearch};

fn main() {
    // Reduced-scale data collection (4 KiB pages, no multiplexing noise) so the
    // example finishes in a few seconds.
    let mut config = HarnessConfig::quick();
    config.accesses_per_workload = 60_000;
    println!("collecting observations from the simulated Haswell MMU ...");
    let observations = collect_case_study_observations(&config);
    println!("  {} observations collected", observations.len());

    let feature_names: Vec<&str> = Feature::ALL.iter().map(|f| f.name()).collect();
    let search = GuidedSearch::new(
        |features: &FeatureSet| build_feature_model("candidate", features),
        &feature_names,
    );

    println!("\nrunning discovery + elimination from the conventional-wisdom model ...");
    let graph = search.run(&FeatureSet::new(), &observations);

    println!("\nexplored models:");
    for step in &graph.steps {
        println!(
            "  [{:?}] {{{}}} -> {} infeasible observation(s){}",
            step.phase,
            step.features.join(", "),
            step.infeasible_count,
            if step.feasible { "  (feasible)" } else { "" }
        );
    }

    println!("\nminimal feasible feature sets:");
    for set in &graph.minimal_feasible {
        println!("  {{{}}}", set.join(", "));
    }

    let essential = graph.essential_features();
    println!(
        "\nfeatures present in every feasible explored model: {{{}}}",
        essential.join(", ")
    );
    println!(
        "\n(The paper's conclusion: merging, early PSC lookup, walk bypassing and TLB \
         prefetching are required to explain Haswell's counter data; the PML4E cache is \
         compatible but only required when walk bypassing is not modelled.)"
    );
}
