//! Multiplexing noise and counter confidence regions (the paper's Section 4,
//! Figures 3d and 5).
//!
//! Collects multiplexed (noisy) samples from the simulated PMU, builds both the
//! naive independent-counter confidence region and CounterPoint's correlated
//! region, and shows that (i) the correlated region is far tighter, and (ii) the
//! tighter region is what lets a genuine model-constraint violation be detected
//! despite the noise.
//!
//! Run with: `cargo run --release --example noise_and_confidence`

use counterpoint::haswell::full_counter_space;
use counterpoint::haswell::mem::PageSize;
use counterpoint::haswell::mmu::{HaswellMmu, MmuConfig};
use counterpoint::haswell::pmu::{MultiplexingPmu, PmuConfig};
use counterpoint::models::family::{build_feature_model, feature_sets_table3};
use counterpoint::workloads::{GraphTraversal, Workload};
use counterpoint::{Inquiry, NoiseModel, Observation};

fn main() {
    let space = full_counter_space();

    // A graph-traversal workload: bursty same-page accesses exercise walk merging
    // and early PDE-cache lookups, the behaviours that refute the featureless
    // model m0.
    let workload = GraphTraversal {
        vertices: 400_000,
        avg_degree: 8,
        seed: 42,
    };
    let accesses = workload.generate(300_000);

    // Measure with a 4-counter PMU multiplexing all 26 events.
    let pmu = MultiplexingPmu::new(PmuConfig {
        physical_counters: 4,
        slices_per_interval: 50,
        phase_variation: 0.35,
        seed: 7,
    });
    let mut mmu = HaswellMmu::new(MmuConfig::haswell());
    let samples = pmu.collect(&mut mmu, &accesses, PageSize::Size4K, &space, 40);

    let correlated = Observation::from_samples_with_model(
        "graph-correlated",
        &samples,
        0.99,
        NoiseModel::Correlated,
    );
    let independent = Observation::from_samples_with_model(
        "graph-independent",
        &samples,
        0.99,
        NoiseModel::Independent,
    );

    println!("confidence-region extent (sum of half-widths) at 99% confidence:");
    println!(
        "  independent counters : {:>12.1}",
        independent.region().total_extent()
    );
    println!(
        "  correlated counters  : {:>12.1}",
        correlated.region().total_extent()
    );
    println!(
        "  tightening factor    : {:>12.2}x",
        independent.region().total_extent() / correlated.region().total_extent().max(1e-9)
    );

    // Does the tighter region matter?  One session tests the featureless model
    // m0 and the feature-complete m4 against both regions at once.
    let specs = feature_sets_table3();
    let m0 = build_feature_model("m0", &specs.iter().find(|(n, _)| n == "m0").unwrap().1);
    let m4 = build_feature_model("m4", &specs.iter().find(|(n, _)| n == "m4").unwrap().1);
    let report = Inquiry::new()
        .observations(vec![correlated, independent])
        .model("m0", m0)
        .model("m4", m4)
        .run()
        .expect("the inquiry is fully wired");

    let render = |model: &str, observation: &str| {
        let verdict = report
            .verdict(model, observation)
            .expect("every pair was tested");
        if verdict.is_feasible() {
            "feasible (no violation detected)".to_string()
        } else {
            let evidence = verdict
                .farkas_certificate()
                .map(|c| format!(" — Farkas certificate over {} counters", c.len()))
                .unwrap_or_default();
            format!("INFEASIBLE (model refuted{evidence})")
        }
    };
    println!("\nfeasibility of the conventional-wisdom model m0:");
    println!(
        "  with the independent region : {}",
        render("m0", "graph-independent")
    );
    println!(
        "  with the correlated region  : {}",
        render("m0", "graph-correlated")
    );
    println!("\nfeasibility of the feature-complete model m4:");
    println!(
        "  with the correlated region  : {}",
        render("m4", "graph-correlated")
    );
    println!(
        "\nA looser region can hide the violation of m0's constraints; the correlated \
         region keeps it visible while still accepting the feature-complete model."
    );
}
