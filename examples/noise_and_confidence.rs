//! Multiplexing noise and counter confidence regions (the paper's Section 4,
//! Figures 3d and 5).
//!
//! Collects multiplexed (noisy) samples from the simulated PMU, builds both the
//! naive independent-counter confidence region and CounterPoint's correlated
//! region, and shows that (i) the correlated region is far tighter, and (ii) the
//! tighter region is what lets a genuine model-constraint violation be detected
//! despite the noise.
//!
//! Run with: `cargo run --release --example noise_and_confidence`

use counterpoint::haswell::full_counter_space;
use counterpoint::haswell::mem::PageSize;
use counterpoint::haswell::mmu::{HaswellMmu, MmuConfig};
use counterpoint::haswell::pmu::{MultiplexingPmu, PmuConfig};
use counterpoint::models::family::{build_feature_model, feature_sets_table3};
use counterpoint::workloads::{GraphTraversal, Workload};
use counterpoint::{FeasibilityChecker, NoiseModel, Observation};

fn main() {
    let space = full_counter_space();

    // A graph-traversal workload: bursty same-page accesses exercise walk merging
    // and early PDE-cache lookups, the behaviours that refute the featureless
    // model m0.
    let workload = GraphTraversal {
        vertices: 400_000,
        avg_degree: 8,
        seed: 42,
    };
    let accesses = workload.generate(300_000);

    // Measure with a 4-counter PMU multiplexing all 26 events.
    let pmu = MultiplexingPmu::new(PmuConfig {
        physical_counters: 4,
        slices_per_interval: 50,
        phase_variation: 0.35,
        seed: 7,
    });
    let mut mmu = HaswellMmu::new(MmuConfig::haswell());
    let samples = pmu.collect(&mut mmu, &accesses, PageSize::Size4K, &space, 40);

    let correlated =
        Observation::from_samples_with_model("graph", &samples, 0.99, NoiseModel::Correlated);
    let independent =
        Observation::from_samples_with_model("graph", &samples, 0.99, NoiseModel::Independent);

    println!("confidence-region extent (sum of half-widths) at 99% confidence:");
    println!(
        "  independent counters : {:>12.1}",
        independent.region().total_extent()
    );
    println!(
        "  correlated counters  : {:>12.1}",
        correlated.region().total_extent()
    );
    println!(
        "  tightening factor    : {:>12.2}x",
        independent.region().total_extent() / correlated.region().total_extent().max(1e-9)
    );

    // Does the tighter region matter?  Test the featureless model m0 against both.
    let specs = feature_sets_table3();
    let m0 = build_feature_model("m0", &specs.iter().find(|(n, _)| n == "m0").unwrap().1);
    let m4 = build_feature_model("m4", &specs.iter().find(|(n, _)| n == "m4").unwrap().1);

    let m0_checker = FeasibilityChecker::new(&m0);
    let m4_checker = FeasibilityChecker::new(&m4);
    println!("\nfeasibility of the conventional-wisdom model m0:");
    println!(
        "  with the independent region : {}",
        verdict(m0_checker.is_feasible(&independent))
    );
    println!(
        "  with the correlated region  : {}",
        verdict(m0_checker.is_feasible(&correlated))
    );
    println!("\nfeasibility of the feature-complete model m4:");
    println!(
        "  with the correlated region  : {}",
        verdict(m4_checker.is_feasible(&correlated))
    );
    println!(
        "\nA looser region can hide the violation of m0's constraints; the correlated \
         region keeps it visible while still accepting the feature-complete model."
    );
}

fn verdict(feasible: bool) -> &'static str {
    if feasible {
        "feasible (no violation detected)"
    } else {
        "INFEASIBLE (model refuted)"
    }
}
