//! Reverse-engineering the TLB prefetcher's trigger conditions (the paper's
//! Section 7.1 and Appendix C.2, condensed).
//!
//! Runs the linear-access microbenchmark — whose sequential page-crossing pattern
//! is what exercises the load–store-queue prefetcher — on the simulated Haswell
//! MMU, then tests the eighteen trigger-condition models `t0`–`t17` against the
//! resulting observations.
//!
//! Run with: `cargo run --release --example prefetcher_discovery`

use counterpoint::haswell::mem::PageSize;
use counterpoint::models::family::{build_trigger_model, trigger_specs_table5};
use counterpoint::models::harness::{observe_trace, HarnessConfig};
use counterpoint::workloads::{LinearAccess, Workload};
use counterpoint::Inquiry;

fn main() {
    let config = HarnessConfig::quick();

    // Linear microbenchmark instances: ascending and descending streams, loads and
    // a store-heavy variant, run for several passes so the prefetcher reaches
    // steady state.
    let mut observations = Vec::new();
    for (label, store_ratio) in [("loads", 0.0f64), ("stores", 1.0)] {
        let workload = LinearAccess {
            footprint: 8 << 20,
            stride: 64,
            store_ratio,
        };
        let accesses = workload.generate(4_000_000);
        let obs = observe_trace(
            &format!("linear-{label}"),
            &accesses,
            PageSize::Size4K,
            &config,
        );
        observations.push(obs);
    }

    // One session tests the whole trigger-condition family t0–t17.
    let specs = trigger_specs_table5();
    let report = Inquiry::new()
        .observations(observations)
        .model_family(
            specs
                .iter()
                .map(|(name, spec)| (name.clone(), build_trigger_model(name, spec))),
        )
        .run()
        .expect("the inquiry is fully wired");

    println!("trigger-condition models vs linear microbenchmark observations\n");
    println!(
        "{:<5} {:>5} {:>5} {:>6} {:>9} {:>9}   #infeasible",
        "model", "spec", "load", "store", "dtlb-miss", "stlb-miss"
    );
    for ((name, spec), row) in specs.iter().zip(&report.models) {
        println!(
            "{:<5} {:>5} {:>5} {:>6} {:>9} {:>9}   {}",
            name,
            tick(spec.speculative),
            tick(spec.load),
            tick(spec.store),
            tick(spec.dtlb_miss),
            tick(spec.stlb_miss),
            row.infeasible_count
        );
    }

    println!("\nfeasible models: {}", report.feasible_models().join(", "));
    println!(
        "\nInterpretation (mirroring the paper): models that require a demand DTLB or STLB \
         miss to trigger prefetching cannot explain the steady-state linear scan, where \
         demand accesses hit the TLB precisely because the prefetcher already resolved the \
         translation — so prefetches must be triggered before the DTLB lookup, in the \
         load/store queue."
    );
}

fn tick(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "-"
    }
}
