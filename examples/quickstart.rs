//! Quickstart: the paper's running PDE-cache example (Figures 2 and 6).
//!
//! An expert believes the Haswell page-table walker is initialised *before* the PDE
//! cache is consulted, which implies `load.pde$_miss <= load.causes_walk`.  Counter
//! data refutes that model; refining it — looking the PDE cache up early and
//! allowing translation requests to abort — makes it consistent.
//!
//! Run with: `cargo run --example quickstart`

use counterpoint::{
    compile_uop, deduce_constraints, CounterSpace, FeasibilityChecker, ModelCone, Observation,
};

fn main() {
    let counters = CounterSpace::new(&["load.causes_walk", "load.pde$_miss"]);

    // The expert's initial mental model, written in the CounterPoint DSL.
    let initial = compile_uop(
        "initial",
        r#"
        incr load.causes_walk;
        do LookupPde$;
        switch Pde$Status {
            Hit  => pass;
            Miss => incr load.pde$_miss
        };
        done;
        "#,
        &counters,
    )
    .expect("the initial model is syntactically valid");

    let initial_cone = ModelCone::from_mudd(&initial).expect("path enumeration succeeds");
    println!("initial model: {} μpaths", initial_cone.num_paths());
    let constraints = deduce_constraints(&initial_cone);
    println!("implied model constraints:");
    for c in constraints.all_named() {
        println!("  {}", c.text());
    }

    // An observation from the hardware (here: exact counts from a microbenchmark):
    // more PDE-cache misses than walks.
    let observation = Observation::exact("microbenchmark", &[10_000.0, 13_500.0]);
    let checker = FeasibilityChecker::new(&initial_cone);
    let report = checker.check(&observation, Some(&constraints));
    println!(
        "\nobservation {:?} vs initial model: feasible = {}",
        observation.name(),
        report.feasible
    );
    for violated in &report.violated {
        println!("  violated: {}", violated.text());
    }

    // The refinement of Figure 6c: the PDE cache is looked up before the walk
    // starts, and translation requests can abort in between.
    let refined = compile_uop(
        "refined",
        r#"
        do LookupPde$;
        switch Pde$Status {
            Hit  => pass;
            Miss => incr load.pde$_miss
        };
        switch Abort {
            Yes => done;
            No  => incr load.causes_walk
        };
        done;
        "#,
        &counters,
    )
    .expect("the refined model is syntactically valid");

    let refined_cone = ModelCone::from_mudd(&refined).expect("path enumeration succeeds");
    let refined_checker = FeasibilityChecker::new(&refined_cone);
    println!(
        "\nobservation vs refined model: feasible = {}",
        refined_checker.is_feasible(&observation)
    );
    println!("refined model constraints:");
    for c in deduce_constraints(&refined_cone).all_named() {
        println!("  {}", c.text());
    }
}
