//! Quickstart: the paper's running PDE-cache example (Figures 2 and 6) as one
//! `Inquiry` session.
//!
//! An expert believes the Haswell page-table walker is initialised *before* the PDE
//! cache is consulted, which implies `load.pde$_miss <= load.causes_walk`.  Counter
//! data refutes that model — and the session's `Verdict` carries the Farkas
//! certificate and the violated constraint proving it — while the refinement
//! (early PDE-cache lookup plus aborting translation requests) is consistent.
//!
//! Run with: `cargo run --example quickstart`

use counterpoint::{compile_uop, CounterSpace, Inquiry, ModelCone, Observation};

fn main() {
    let counters = CounterSpace::new(&["load.causes_walk", "load.pde$_miss"]);

    // The expert's initial mental model, written in the CounterPoint DSL.
    let initial = compile_uop(
        "initial",
        r#"
        incr load.causes_walk;
        do LookupPde$;
        switch Pde$Status {
            Hit  => pass;
            Miss => incr load.pde$_miss
        };
        done;
        "#,
        &counters,
    )
    .expect("the initial model is syntactically valid");

    // The refinement of Figure 6c: the PDE cache is looked up before the walk
    // starts, and translation requests can abort in between.
    let refined = compile_uop(
        "refined",
        r#"
        do LookupPde$;
        switch Pde$Status {
            Hit  => pass;
            Miss => incr load.pde$_miss
        };
        switch Abort {
            Yes => done;
            No  => incr load.causes_walk
        };
        done;
        "#,
        &counters,
    )
    .expect("the refined model is syntactically valid");

    // One session wires the observation, both candidate models and constraint
    // deduction together; the report carries everything the expert needs.
    let report = Inquiry::new()
        .observations(vec![Observation::exact(
            "microbenchmark",
            &[10_000.0, 13_500.0],
        )])
        .model(
            "initial",
            ModelCone::from_mudd(&initial).expect("path enumeration succeeds"),
        )
        .model(
            "refined",
            ModelCone::from_mudd(&refined).expect("path enumeration succeeds"),
        )
        .deduce_constraints(true)
        .run()
        .expect("the inquiry is fully wired");

    for row in &report.models {
        println!("model {:?}:", row.model);
        println!("  implied constraints:");
        for text in report.constraints_of(&row.model).unwrap_or(&[]) {
            println!("    {text}");
        }
        let verdict = report
            .verdict(&row.model, "microbenchmark")
            .expect("the observation was tested");
        println!(
            "  observation \"microbenchmark\": feasible = {}",
            verdict.is_feasible()
        );
        for violated in verdict.violated_constraints() {
            println!("    violated: {violated}");
        }
        if let Some(certificate) = verdict.farkas_certificate() {
            println!("    Farkas certificate (separating direction): {certificate:?}");
        }
        if let Some(witness) = verdict.witness() {
            println!("    witness cone point: {witness:?}");
        }
        println!();
    }

    println!("feasible models: {:?}", report.feasible_models());

    // The whole session is a shareable JSON artifact.
    println!(
        "\nserialized report: {} bytes of deterministic JSON",
        report.to_json().len()
    );
}
