//! Recording and replaying a measurement campaign.
//!
//! A campaign — workloads × page sizes, multiplexed onto the PMU's physical
//! counters — is expensive to (re-)run and impossible to re-measure exactly on
//! real hardware. The collect subsystem therefore treats campaigns as
//! recordable artefacts: run once against any backend, capture every cell's raw
//! interval samples into a JSON [`Trace`], and replay the trace anywhere to
//! reproduce the exact observations (floats round-trip bit-exactly).
//!
//! This example records a small campaign on the simulator backend across two
//! page sizes and two worker threads, writes the trace to a temp file, loads it
//! back, replays it, and verifies the observations are identical. It also shows
//! the schedule planner's view of the campaign: 26 logical events on 4 physical
//! counters need 7 multiplexing rounds, inflating extrapolation noise ~2.6x.
//! Finally, the loaded trace feeds an `Inquiry` session directly — the
//! recorded campaign is all a refutation run needs.
//!
//! Run with: `cargo run --release --example record_replay`
//!
//! [`Trace`]: counterpoint::Trace

use counterpoint::haswell::full_counter_space;
use counterpoint::haswell::mem::PageSize;
use counterpoint::haswell::mmu::MmuConfig;
use counterpoint::haswell::pmu::PmuConfig;
use counterpoint::models::family::{build_feature_model, feature_sets_table3};
use counterpoint::workloads::{GraphTraversal, LinearAccess, PointerChase, Workload};
use counterpoint::{Campaign, CampaignCell, EventSchedule, Inquiry, Trace};
use std::sync::Arc;

fn main() {
    // The campaign matrix: three workloads at two page sizes, 12 measurement
    // intervals each, 2 warm-up intervals discarded, 99% confidence regions.
    let mut campaign = Campaign::new(12, 2, 0.99).with_threads(2);
    let workloads: Vec<(&str, Arc<dyn Workload>)> = vec![
        (
            "linear",
            Arc::new(LinearAccess {
                footprint: 8 << 20,
                stride: 64,
                store_ratio: 0.0,
            }),
        ),
        (
            "graph",
            Arc::new(GraphTraversal {
                vertices: 100_000,
                avg_degree: 8,
                seed: 7,
            }),
        ),
        (
            "chase",
            Arc::new(PointerChase {
                nodes: 500_000,
                seed: 11,
            }),
        ),
    ];
    for page_size in [PageSize::Size4K, PageSize::Size2M] {
        for (name, workload) in &workloads {
            campaign.push(CampaignCell {
                label: format!("{name}@{page_size}"),
                workload: Arc::clone(workload),
                accesses: 30_000,
                page_size,
                seed: PmuConfig::default().seed,
            });
        }
    }

    // What the scheduler must do to fit the full counter space on Haswell's
    // 4 physical counters.
    let schedule = EventSchedule::for_space(&full_counter_space(), 4);
    println!(
        "schedule: {} events on {} physical counters -> {} rounds, noise inflation {:.2}x",
        schedule.num_events(),
        schedule.physical_counters(),
        schedule.num_rounds(),
        schedule.inflation_factor()
    );

    // Record: run on the simulator backend and capture every cell's samples.
    let mmu = MmuConfig::haswell();
    let pmu = PmuConfig::default();
    let (live, trace) = campaign.run_sim_recorded(&mmu, &pmu);
    println!(
        "recorded {} cells ({} intervals each) on {} threads",
        trace.records.len(),
        campaign.intervals(),
        campaign.threads()
    );

    // The trace is a plain JSON artefact: write it, ship it, load it anywhere.
    let path = std::env::temp_dir().join("counterpoint_campaign.json");
    trace.save(&path).expect("trace must save");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("trace written to {} ({bytes} bytes)", path.display());

    // Replay: the same campaign, answered entirely from the recording.
    let loaded = Trace::load(&path).expect("trace must load");
    std::fs::remove_file(&path).ok();
    let replayed = campaign.replay(&loaded).expect("replay must succeed");

    let mut max_divergence = 0.0f64;
    for (a, b) in live.iter().zip(&replayed) {
        assert_eq!(a.name(), b.name());
        for (x, y) in a.mean().iter().zip(b.mean()) {
            max_divergence = max_divergence.max((x - y).abs());
        }
    }
    println!(
        "replayed {} observations, max |live - replayed| counter mean divergence: {max_divergence}",
        replayed.len()
    );
    assert_eq!(max_divergence, 0.0, "replay must be bit-exact");
    println!("replay is bit-identical to the live campaign");

    // A recorded trace is a complete refutation input: feed it straight into a
    // session and test models without touching the simulator again.
    let specs = feature_sets_table3();
    let report = Inquiry::new()
        .trace(campaign, loaded)
        .model_family(["m0", "m4"].iter().map(|name| {
            let features = &specs.iter().find(|(n, _)| n == name).unwrap().1;
            (name.to_string(), build_feature_model(name, features))
        }))
        .run()
        .expect("replaying the freshly recorded trace cannot mismatch");
    println!("\nverdicts from the replayed trace:");
    for row in &report.models {
        println!(
            "  {}: {} of {} observations refute the model{}",
            row.model,
            row.infeasible_count,
            report.observations.len(),
            if row.feasible { "  (feasible)" } else { "" }
        );
    }
}
