//! A tour of the telemetry layer: run a reduced Table 3 model search with a
//! live recording and read the engine's internals off the metrics snapshot —
//! certificate-pool hit rates, warm-basis handoffs, LP pivot effort and the
//! multiplexing-schedule warnings.
//!
//! Run with: `cargo run --release --example telemetry_tour`

use counterpoint::models::family::{build_feature_model, feature_sets_table3};
use counterpoint::models::harness::{case_study_campaign, HarnessConfig};
use counterpoint::telemetry::{Histogram, Metric};
use counterpoint::{ExplorationModel, Inquiry};

fn main() {
    // Reduced-scale Table 3: the full feature-model family over the quick
    // case-study campaign, so the example finishes in CI time.
    let mut config = HarnessConfig::quick();
    config.accesses_per_workload = 20_000;
    let campaign = case_study_campaign(&config);
    let models: Vec<ExplorationModel> = feature_sets_table3()
        .into_iter()
        .map(|(name, features)| {
            let cone = build_feature_model(&name, &features);
            ExplorationModel::new(&name, features, cone)
        })
        .collect();

    println!("running the Table 3 model search with telemetry enabled ...");
    let report = Inquiry::new()
        .sim_campaign(campaign, config.mmu.clone(), config.pmu.clone())
        .models(models)
        .telemetry(true)
        .run()
        .expect("the simulated campaign cannot fail");
    println!(
        "  {} observations, {} models, feasible: {:?}",
        report.observations.len(),
        report.models.len(),
        report.feasible_models()
    );

    let snapshot = report
        .telemetry
        .as_ref()
        .expect("this process owns the telemetry sink");
    let counter = |m: Metric| snapshot.counter(m);
    let rate = |hits: u64, total: u64| {
        if total == 0 {
            0.0
        } else {
            100.0 * hits as f64 / total as f64
        }
    };

    // The certificate pool (the paper's Table 3 engine): how many feasibility
    // decisions short-circuited on a reusable Farkas certificate or witness
    // ray instead of solving an LP.
    let prunes = counter(Metric::CertificatePrunes);
    let witnessed = counter(Metric::WitnessRaySettlements);
    let solves = counter(Metric::LpSolves);
    let decisions = prunes + witnessed + solves;
    println!("\ncertificate pool:");
    println!(
        "  {:>8} decisions   {:>8} certificate prunes ({:.1}%)",
        decisions,
        prunes,
        rate(prunes, decisions)
    );
    println!(
        "  {:>8} witness-ray settlements ({:.1}%)   {:>8} LP solves ({:.1}%)",
        witnessed,
        rate(witnessed, decisions),
        solves,
        rate(solves, decisions)
    );

    let cache_hits = counter(Metric::CoefficientCacheHits);
    let cache_misses = counter(Metric::CoefficientCacheMisses);
    println!(
        "  coefficient cache: {} hits / {} misses ({:.1}% hit rate)",
        cache_hits,
        cache_misses,
        rate(cache_hits, cache_hits + cache_misses)
    );
    println!(
        "  warm-basis handoffs: {} hits / {} misses, cold-solver fallbacks: {}",
        counter(Metric::WarmBasisHandoffHits),
        counter(Metric::WarmBasisHandoffMisses),
        counter(Metric::ColdSolverFallbacks)
    );

    let pivots = snapshot.histogram(Histogram::LpPivotsPerSolve);
    println!("\nLP effort:");
    println!(
        "  {} pivots across {} solves (mean {:.1}), {} refactorizations",
        pivots.sum,
        pivots.count,
        pivots.sum as f64 / pivots.count.max(1) as f64,
        counter(Metric::LpRefactorizations)
    );
    println!("  pivots-per-solve histogram (log2 buckets):");
    for (bits, n) in &pivots.buckets {
        let lo = if *bits == 0 { 0 } else { 1u64 << (bits - 1) };
        let hi = (1u64 << bits) - 1;
        println!("    [{lo:>4} .. {hi:>4}]: {n}");
    }

    println!("\ncollection campaign:");
    println!(
        "  {} cells, {} multiplexing rounds, {} oversubscribed events",
        counter(Metric::CampaignCells),
        counter(Metric::ScheduleRounds),
        counter(Metric::ScheduleOversubscribedEvents)
    );
    for warning in &snapshot.warnings {
        println!(
            "  warning [{}] x{}: {}",
            warning.kind, warning.count, warning.message
        );
    }

    println!(
        "\n(Full dumps: rerun any experiment with `--telemetry <prefix>` — \
         `cargo run --release -p counterpoint-bench --bin experiments -- table3 --quick \
         --telemetry t3` — and load `t3.trace.json` at https://ui.perfetto.dev.)"
    );
}
