//! Property tests for the batched feasibility engine: on random cones and
//! observation batches — exact and noisy, including degenerate cones — the
//! warm-started [`BatchFeasibility`] must agree verdict for verdict with the
//! per-observation [`FeasibilityChecker::is_feasible`], and the threaded
//! model-family fan-out must be deterministic.

use counterpoint::mudd::{CounterSignature, CounterSpace};
use counterpoint::{check_models, BatchFeasibility, FeasibilityChecker, ModelCone, Observation};
use proptest::prelude::*;

fn space(dim: usize) -> CounterSpace {
    let names: Vec<String> = (0..dim).map(|i| format!("c{i}")).collect();
    CounterSpace::new(&names)
}

/// Strategy: a set of counter signatures over `dim` counters.  `0u32..4`
/// includes all-zero signatures, so some generated cones are degenerate
/// (every signature zero ⇒ no generators, only the origin producible).
fn signatures(dim: usize, max_sigs: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..4, dim), 1..max_sigs)
}

fn cone_from(sigs: &[Vec<u32>], dim: usize) -> ModelCone {
    let counter_sigs: Vec<CounterSignature> = sigs
        .iter()
        .map(|s| CounterSignature::from_counts(s.clone()))
        .collect();
    let n = counter_sigs.len();
    ModelCone::from_signatures("prop", &space(dim), counter_sigs, n)
}

/// Deterministic pseudo-random f64 in `[0, range)` from a seed and index.
fn pseudo(seed: u64, i: u64, range: f64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z ^= z >> 29;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 32;
    (z % 1_000_000) as f64 / 1_000_000.0 * range
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batched and per-observation verdicts agree on exact observations —
    /// shared coordinate axes, so the batch path exercises the (cone, axes)
    /// cache and bounds-only warm restarts.
    #[test]
    fn batched_agrees_on_exact_observations(
        sigs in signatures(4, 6),
        seed in 0u64..10_000,
    ) {
        let dim = 4;
        let cone = cone_from(&sigs, dim);
        let checker = FeasibilityChecker::new(&cone);
        let mut batch = BatchFeasibility::new(&cone);
        for i in 0..12u64 {
            let values: Vec<f64> = (0..dim as u64)
                .map(|d| pseudo(seed, i * 16 + d, 30.0).floor())
                .collect();
            let obs = Observation::exact(&format!("p{i}"), &values);
            prop_assert_eq!(
                batch.is_feasible(&obs),
                checker.is_feasible(&obs),
                "exact verdict mismatch on {:?}",
                obs.mean()
            );
        }
    }

    /// Batched and per-observation verdicts agree on noisy observations —
    /// every observation carries its own correlated confidence region
    /// (distinct principal axes), so the batch path exercises the tableau
    /// rebind and certificate/witness harvesting.
    #[test]
    fn batched_agrees_on_noisy_observations(
        sigs in signatures(3, 5),
        seed in 0u64..10_000,
    ) {
        let dim = 3;
        let cone = cone_from(&sigs, dim);
        let checker = FeasibilityChecker::new(&cone);
        let mut batch = BatchFeasibility::new(&cone);
        for i in 0..8u64 {
            let base: Vec<f64> = (0..dim as u64)
                .map(|d| pseudo(seed, i * 64 + d, 50.0))
                .collect();
            let samples: Vec<Vec<f64>> = (0..12u64)
                .map(|s| {
                    base.iter()
                        .enumerate()
                        .map(|(d, b)| b + pseudo(seed, i * 64 + 8 + s * 4 + d as u64, 4.0) - 2.0)
                        .collect()
                })
                .collect();
            let obs = Observation::from_samples(&format!("n{i}"), &samples, 0.99);
            prop_assert_eq!(
                batch.is_feasible(&obs),
                checker.is_feasible(&obs),
                "noisy verdict mismatch on observation {}",
                i
            );
        }
    }

    /// A mixed batch (noisy and exact interleaved) keeps agreeing while the
    /// engine's axes cache flips between shared and per-observation axes.
    #[test]
    fn batched_agrees_on_interleaved_batches(
        sigs in signatures(3, 5),
        seed in 0u64..10_000,
    ) {
        let dim = 3;
        let cone = cone_from(&sigs, dim);
        let checker = FeasibilityChecker::new(&cone);
        let mut batch = BatchFeasibility::new(&cone);
        for i in 0..6u64 {
            let base: Vec<f64> = (0..dim as u64)
                .map(|d| pseudo(seed, i * 32 + d, 40.0))
                .collect();
            let obs = if i % 2 == 0 {
                Observation::exact(&format!("e{i}"), &base)
            } else {
                let samples: Vec<Vec<f64>> = (0..10u64)
                    .map(|s| {
                        base.iter()
                            .enumerate()
                            .map(|(d, b)| b + pseudo(seed, i * 32 + 4 + s * 3 + d as u64, 2.0))
                            .collect()
                    })
                    .collect();
                Observation::from_samples(&format!("s{i}"), &samples, 0.99)
            };
            prop_assert_eq!(batch.is_feasible(&obs), checker.is_feasible(&obs));
        }
    }

    /// The degenerate cone (all signatures zero ⇒ no generators) agrees too:
    /// only regions containing the origin are feasible.
    #[test]
    fn batched_agrees_on_degenerate_cones(seed in 0u64..10_000) {
        let dim = 3;
        let cone = cone_from(&[vec![0, 0, 0]], dim);
        let checker = FeasibilityChecker::new(&cone);
        let mut batch = BatchFeasibility::new(&cone);
        prop_assert_eq!(cone.num_generators(), 0);
        for i in 0..6u64 {
            let values: Vec<f64> = (0..dim as u64)
                .map(|d| pseudo(seed, i * 8 + d, 3.0).floor())
                .collect();
            let obs = Observation::exact(&format!("z{i}"), &values);
            prop_assert_eq!(batch.is_feasible(&obs), checker.is_feasible(&obs));
        }
        let origin = Observation::exact("origin", &[0.0, 0.0, 0.0]);
        prop_assert!(batch.is_feasible(&origin));
    }

    /// The model-family fan-out returns identical verdict matrices for every
    /// worker count, in model order, matching the per-model engines.
    #[test]
    fn check_models_is_thread_invariant(
        sigs_a in signatures(3, 4),
        sigs_b in signatures(3, 4),
        seed in 0u64..10_000,
    ) {
        let dim = 3;
        let cones = [cone_from(&sigs_a, dim), cone_from(&sigs_b, dim)];
        let refs: Vec<&ModelCone> = cones.iter().collect();
        let observations: Vec<Observation> = (0..6u64)
            .map(|i| {
                let values: Vec<f64> = (0..dim as u64)
                    .map(|d| pseudo(seed, i * 8 + d, 25.0).floor())
                    .collect();
                Observation::exact(&format!("o{i}"), &values)
            })
            .collect();
        let sequential = check_models(&refs, &observations, 1);
        for threads in [2usize, 4] {
            prop_assert_eq!(&check_models(&refs, &observations, threads), &sequential);
        }
        for (cone, row) in cones.iter().zip(&sequential) {
            let expected: Vec<bool> = BatchFeasibility::new(cone).check_all(&observations);
            prop_assert_eq!(row, &expected);
        }
    }
}
