//! Soundness of cross-model pruning: whenever the lattice search settles an
//! observation for a model from the shared pool instead of solving the LP —
//! refuted by a Farkas certificate cached from *another* model, or settled
//! feasible by a witness ray harvested from another model — re-checking that
//! (model, observation) pair with the cold per-observation solver must agree.
//! The containment checks (`c · g ≥ 0` for every generator on the certificate
//! side, support ⊆ generators on the witness side) plus the region-side
//! margins are supposed to make every pool hit *exactly* the verdict the LP
//! would return — this suite holds both directions to that.

use counterpoint::mudd::{CounterSignature, CounterSpace};
use counterpoint::{FeasibilityChecker, FeatureSet, LatticeSearch, ModelCone, Observation};
use proptest::prelude::*;

const DIM: usize = 3;

/// An additive lattice: base signatures plus one extra signature per feature.
/// Removing features yields genuine sub-cones, the shape certificate pruning
/// thrives on during elimination.
fn cone(base: &[Vec<u32>], per_feature: &[Vec<u32>], set: &FeatureSet) -> ModelCone {
    let space = CounterSpace::new(&["c0", "c1", "c2"]);
    let mut sigs: Vec<Vec<u32>> = base.to_vec();
    for (i, sig) in per_feature.iter().enumerate() {
        if set.contains(&format!("f{i}")) {
            sigs.push(sig.clone());
        }
    }
    let counter_sigs: Vec<CounterSignature> = sigs
        .into_iter()
        .map(CounterSignature::from_counts)
        .collect();
    let n = counter_sigs.len();
    ModelCone::from_signatures("lattice", &space, counter_sigs, n)
}

/// Deterministic pseudo-random f64 in `[0, range)` from a seed and index.
fn pseudo(seed: u64, i: u64, range: f64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z ^= z >> 29;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 32;
    (z % 1_000_000) as f64 / 1_000_000.0 * range
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every certificate-pruned (model, observation) pair the stats report is
    /// re-derived with the cold solver and must be infeasible.
    #[test]
    fn pruned_verdicts_agree_with_the_cold_solver(
        base in proptest::collection::vec(proptest::collection::vec(0u32..4, DIM), 1..4),
        per_feature in proptest::collection::vec(proptest::collection::vec(0u32..4, DIM), 1..4),
        seed in 0u64..10_000,
        threads in 1usize..5,
    ) {
        let observations: Vec<Observation> = (0..6u64)
            .map(|i| {
                let values: Vec<f64> = (0..DIM as u64)
                    .map(|d| pseudo(seed, i * 16 + d, 25.0).floor())
                    .collect();
                Observation::exact(&format!("p{i}"), &values)
            })
            .collect();
        let universe: Vec<String> = (0..per_feature.len()).map(|i| format!("f{i}")).collect();
        let generator = |set: &FeatureSet| cone(&base, &per_feature, set);

        // Start from the full set so elimination descends through submodels —
        // the direction certificates propagate.
        let initial: FeatureSet = universe.iter().cloned().collect();
        let mut search = LatticeSearch::new(generator, &universe);
        search.set_threads(threads);
        let (_, stats) = search.run_with_stats(&initial, &observations);

        let mut rechecked_refuted = 0usize;
        let mut rechecked_feasible = 0usize;
        for pruned in &stats.pruned_models {
            let features: FeatureSet = pruned.features.iter().cloned().collect();
            let model = generator(&features);
            let checker = FeasibilityChecker::new(&model);
            for &obs in &pruned.pruned_observations {
                prop_assert!(
                    !checker.is_feasible(&observations[obs]),
                    "certificate pruned a feasible pair: model {:?}, observation {:?}",
                    pruned.features,
                    observations[obs].mean()
                );
                rechecked_refuted += 1;
            }
            for &obs in &pruned.witness_observations {
                prop_assert!(
                    checker.is_feasible(&observations[obs]),
                    "witness ray settled an infeasible pair: model {:?}, observation {:?}",
                    pruned.features,
                    observations[obs].mean()
                );
                rechecked_feasible += 1;
            }
        }
        prop_assert_eq!(rechecked_refuted, stats.certificate_pruned);
        prop_assert_eq!(rechecked_feasible, stats.witness_settled);
    }
}

/// A deterministic lattice where pruning is guaranteed to fire, so the
/// property above can never pass vacuously: the observation demands more `c1`
/// than `c0`, which only the full model allows, and elimination walks every
/// submodel below the refuted ones.
#[test]
fn pruning_fires_and_is_sound_on_the_guaranteed_lattice() {
    let base = vec![vec![1, 0, 0]];
    let per_feature = vec![vec![1, 1, 0], vec![0, 1, 1], vec![2, 1, 0]];
    let universe = ["f0", "f1", "f2"];
    let generator = |set: &FeatureSet| cone(&base, &per_feature, set);
    let observations = vec![
        Observation::exact("x-only", &[9.0, 0.0, 0.0]),
        Observation::exact("needs-f1", &[4.0, 9.0, 6.0]),
        Observation::exact("balanced", &[8.0, 5.0, 2.0]),
    ];
    let initial: FeatureSet = universe.iter().map(|f| f.to_string()).collect();
    let search = LatticeSearch::new(generator, &universe);
    let (graph, stats) = search.run_with_stats(&initial, &observations);

    assert!(
        graph.steps[0].feasible,
        "the full model explains everything"
    );
    assert!(
        stats.certificate_pruned > 0,
        "the descent below the f1-free submodels must reuse a certificate: {stats:?}"
    );
    for pruned in &stats.pruned_models {
        let features: FeatureSet = pruned.features.iter().cloned().collect();
        let checker_cone = generator(&features);
        let checker = FeasibilityChecker::new(&checker_cone);
        for &obs in &pruned.pruned_observations {
            assert!(
                !checker.is_feasible(&observations[obs]),
                "pruned pair must be cold-infeasible: {:?} / {:?}",
                pruned.features,
                observations[obs].name()
            );
        }
        for &obs in &pruned.witness_observations {
            assert!(
                checker.is_feasible(&observations[obs]),
                "witness-settled pair must be cold-feasible: {:?} / {:?}",
                pruned.features,
                observations[obs].name()
            );
        }
    }
    // The prunes never changed the graph: the cold reference agrees.
    let expected =
        counterpoint::reference_search(&generator, &universe, 256, &initial, &observations);
    assert_eq!(graph, expected);
}
