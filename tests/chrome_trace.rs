//! Chrome Trace Event dump validation: the span dump an inquiry records must
//! parse as JSON, obey the B/E stack discipline per thread, and round-trip
//! bit-exactly through the vendored `serde_json` value model (every value is
//! an integer or a string, and the value model preserves key order).

use counterpoint::mudd::{CounterSignature, CounterSpace};
use counterpoint::{FeatureSet, Inquiry, ModelCone, Observation};
use serde_json::JsonValue;
use std::collections::HashMap;

fn toy_cone(features: &FeatureSet) -> ModelCone {
    let space = CounterSpace::new(&["x", "y"]);
    let mut sigs = vec![CounterSignature::from_counts(vec![1, 0])];
    if features.contains("Fy") {
        sigs.push(CounterSignature::from_counts(vec![1, 1]));
    }
    if features.contains("Fboth") {
        sigs.push(CounterSignature::from_counts(vec![0, 1]));
    }
    let n = sigs.len();
    ModelCone::from_signatures("toy", &space, sigs, n)
}

fn str_field<'a>(event: &'a JsonValue, key: &str) -> &'a str {
    event
        .get(key)
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("event field `{key}` must be a string"))
}

fn int_field(event: &JsonValue, key: &str) -> i128 {
    match event.get(key) {
        Some(&JsonValue::Int(n)) => n,
        other => panic!("event field `{key}` must be an integer, got {other:?}"),
    }
}

/// The single test of this binary (sole owner of the process-global sink):
/// record a threaded refinement inquiry and validate its trace dump.
#[test]
fn chrome_trace_dump_is_well_formed_and_round_trips() {
    let report = Inquiry::new()
        .observations(vec![
            Observation::exact("x-only", &[10.0, 0.0]),
            Observation::exact("balanced", &[10.0, 6.0]),
        ])
        .model("base", toy_cone(&FeatureSet::new()))
        .refine(toy_cone, &["Fy", "Fboth"], FeatureSet::new())
        .threads(2)
        .search_threads(2)
        .telemetry(true)
        .run()
        .expect("the toy inquiry cannot fail");
    let trace = report
        .telemetry
        .expect("this run owns the sink")
        .chrome_trace_json();

    // Bit-exact round trip: parse with the vendored serde_json (insertion-
    // ordered objects, exact integers) and re-serialise compactly.
    let value: JsonValue = serde_json::from_str(&trace).expect("trace dump must parse");
    assert_eq!(
        serde_json::to_string(&value).expect("trace value is finite"),
        trace,
        "re-serialising the parsed dump must reproduce the bytes"
    );

    let Some(JsonValue::Array(events)) = value.get("traceEvents") else {
        panic!("trace dump must be an object with a `traceEvents` array");
    };
    assert!(!events.is_empty(), "the inquiry must record spans");

    // Validate each event's shape and enforce the B/E stack discipline per
    // logical thread: every E closes the innermost open B of the same name
    // and span id, and timestamps never go backwards within a thread.
    let mut stacks: HashMap<i128, Vec<(String, i128)>> = HashMap::new();
    let mut last_ts: HashMap<i128, i128> = HashMap::new();
    let mut names: Vec<String> = Vec::new();
    for event in events {
        let name = str_field(event, "name");
        assert_eq!(str_field(event, "cat"), "counterpoint");
        let phase = str_field(event, "ph");
        let ts = int_field(event, "ts");
        assert!(ts >= 0, "timestamps are µs since the recording epoch");
        assert_eq!(int_field(event, "pid"), 1);
        let tid = int_field(event, "tid");
        let args = event.get("args").expect("every event carries args");
        let id = int_field(args, "id");
        args.get("key")
            .and_then(JsonValue::as_str)
            .expect("args.key must be a string");

        let prev = last_ts.entry(tid).or_insert(0);
        assert!(*prev <= ts, "per-thread timestamps must be non-decreasing");
        *prev = ts;

        let stack = stacks.entry(tid).or_default();
        match phase {
            "B" => {
                stack.push((name.to_string(), id));
                names.push(name.to_string());
            }
            "E" => {
                let (open_name, open_id) = stack
                    .pop()
                    .unwrap_or_else(|| panic!("E event `{name}` without an open span"));
                assert_eq!(open_name, name, "E must close the innermost open B");
                assert_eq!(open_id, id, "E must carry the span id it closes");
            }
            other => panic!("unexpected phase `{other}`"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "thread {tid} left spans open: {stack:?}");
    }

    // The pipeline's coarse span sites all appear.
    for expected in ["inquiry", "collect", "evaluate", "refine", "model_sweep"] {
        assert!(
            names.iter().any(|n| n == expected),
            "span `{expected}` missing from the dump (got {names:?})"
        );
    }
}
