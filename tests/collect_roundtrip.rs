//! End-to-end record/replay round trip through the counter-collection
//! subsystem: a campaign recorded on the simulator, serialised to JSON,
//! parsed back (exercising the vendored serde/serde_json stack on nested
//! structs), and replayed through [`ReplayBackend`] must reproduce the original
//! observations bit-for-bit — and match the pre-rewire harness output exactly.

#[allow(deprecated)] // the deprecated harness shim must stay in lockstep until removed
use counterpoint::models::harness::collect_case_study_observations;
use counterpoint::models::harness::{case_study_campaign, HarnessConfig};
use counterpoint::{Observation, ReplayBackend, Trace};
use counterpoint_haswell::mem::PageSize;

fn assert_observations_identical(a: &[Observation], b: &[Observation]) {
    assert_eq!(a.len(), b.len(), "observation counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.name(), y.name());
        assert_eq!(x.mean(), y.mean(), "means differ for {}", x.name());
        assert_eq!(x.region().axes(), y.region().axes());
        assert_eq!(x.region().half_widths(), y.region().half_widths());
        assert_eq!(x.region().confidence(), y.region().confidence());
        assert_eq!(x.region().num_samples(), y.region().num_samples());
    }
}

fn small_config() -> HarnessConfig {
    HarnessConfig {
        accesses_per_workload: 2_000,
        page_sizes: vec![PageSize::Size4K, PageSize::Size2M],
        intervals: 8,
        ..HarnessConfig::default()
    }
}

#[test]
#[allow(deprecated)] // the deprecated harness shim must stay in lockstep until removed
fn recorded_campaign_replays_bit_identically() {
    let config = small_config();
    let campaign = case_study_campaign(&config);

    // Record the campaign (the noisy, multiplexed default PMU).
    let (live, trace) = campaign.run_sim_recorded(&config.mmu, &config.pmu);
    assert_eq!(trace.records.len(), campaign.cells().len());

    // The default campaign path and the harness entry point agree exactly.
    let harness = collect_case_study_observations(&config);
    assert_observations_identical(&live, &harness);

    // JSON round trip: serialise, parse, replay. Floats round-trip bit-exactly,
    // so the replayed observations are indistinguishable from the live ones.
    let json = trace.to_json();
    let parsed = Trace::from_json(&json).expect("recorded trace must parse");
    assert_eq!(parsed, trace, "trace JSON round trip must be lossless");

    let replayed = campaign.replay(&parsed).expect("replay must succeed");
    assert_observations_identical(&live, &replayed);

    // Replay is also stable under thread fan-out.
    let replayed_threaded = campaign
        .clone()
        .with_threads(4)
        .replay(&parsed)
        .expect("threaded replay must succeed");
    assert_observations_identical(&live, &replayed_threaded);
}

#[test]
fn replay_backend_refuses_a_reseeded_campaign_record_lookup_miss() {
    let config = small_config();
    let campaign = case_study_campaign(&config);
    let (_, trace) = campaign.run_sim_recorded(&config.mmu, &config.pmu);

    // A campaign over a page size that was never recorded must fail loudly,
    // not silently return the wrong cells.
    let other = HarnessConfig {
        page_sizes: vec![PageSize::Size1G],
        ..small_config()
    };
    let missing = case_study_campaign(&other).replay(&trace);
    assert!(missing.is_err(), "replaying unrecorded cells must fail");
}

#[test]
fn trace_survives_a_disk_round_trip() {
    let config = HarnessConfig {
        accesses_per_workload: 1_000,
        page_sizes: vec![PageSize::Size4K],
        intervals: 6,
        ..HarnessConfig::default()
    };
    let campaign = case_study_campaign(&config);
    let (live, trace) = campaign.run_sim_recorded(&config.mmu, &config.pmu);

    let path = std::env::temp_dir().join("counterpoint_roundtrip_campaign.json");
    trace.save(&path).expect("trace must save");
    let loaded = Trace::load(&path).expect("trace must load");
    std::fs::remove_file(&path).ok();

    let replayed = campaign.replay(&loaded).expect("replay from disk");
    assert_observations_identical(&live, &replayed);

    // The replay backend itself exposes the loaded trace.
    let backend = ReplayBackend::new(loaded);
    assert_eq!(backend.trace().records.len(), campaign.cells().len());
}
