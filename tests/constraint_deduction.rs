//! Integration tests for constraint deduction on the case-study models: the
//! deduced constraints must include the paper's Table 1 relationships and must
//! agree with LP feasibility on which observations they reject.

use counterpoint::haswell::full_counter_space;
use counterpoint::haswell::hec::cumulative_group_space;
use counterpoint::models::family::{build_feature_model, feature_sets_table3};
use counterpoint::{deduce_constraints, FeasibilityChecker, Observation};
use counterpoint_geometry::ConstraintSense;

fn model(name: &str) -> counterpoint::ModelCone {
    let specs = feature_sets_table3();
    let (_, features) = specs.into_iter().find(|(n, _)| n == name).unwrap();
    build_feature_model(name, &features)
}

#[test]
fn projected_m0_implies_table1_constraint_1() {
    // Constraint (1): load.ret_stlb_miss <= load.walk_done must be implied by every
    // model without walk merging.  Rather than matching the rendered facet text
    // (the deduction is free to express the same polyhedron with different facet
    // bases), check the semantic content: a point violating the constraint must be
    // rejected and a point satisfying it (and the rest of the model) accepted.
    let counters = [
        "load.ret",
        "load.ret_stlb_miss",
        "load.causes_walk",
        "load.walk_done",
        "load.walk_done_4k",
        "load.walk_done_2m",
        "load.walk_done_1g",
        "load.pde$_miss",
    ];
    // m1 includes prefetching (extra walks allowed) but no merging, so constraint
    // (1) is a proper inequality rather than an equality.
    let m1 = model("m1").project(&counters);
    let constraints = deduce_constraints(&m1);
    assert!(!constraints.is_empty());

    // ret=1000, miss=120, causes=100, done=100 (4k), pde=40: violates (1).
    let violating =
        counterpoint_numeric::RatVector::from_i64(&[1000, 120, 100, 100, 100, 0, 0, 40]);
    assert!(constraints
        .all_named()
        .any(|c| !c.constraint().is_satisfied_by(&violating)));

    // Same profile with miss=80 <= done=100 satisfies the model.
    let satisfying =
        counterpoint_numeric::RatVector::from_i64(&[1000, 80, 100, 100, 100, 0, 0, 40]);
    assert!(constraints
        .all_named()
        .all(|c| c.constraint().is_satisfied_by(&satisfying)));

    // The introduction's PDE-cache sanity check: pde$_miss <= causes_walk is also
    // implied (violating point rejected).
    let pde_violation =
        counterpoint_numeric::RatVector::from_i64(&[1000, 80, 100, 100, 100, 0, 0, 140]);
    assert!(constraints
        .all_named()
        .any(|c| !c.constraint().is_satisfied_by(&pde_violation)));
}

#[test]
fn feature_complete_model_drops_the_violated_constraints() {
    // With merging and early PSC lookup, neither introduction constraint is implied
    // any more.
    let m4 = model("m4").project(&[
        "load.ret",
        "load.ret_stlb_miss",
        "load.causes_walk",
        "load.walk_done",
        "load.walk_done_4k",
        "load.walk_done_2m",
        "load.walk_done_1g",
        "load.pde$_miss",
    ]);
    let constraints = deduce_constraints(&m4);
    let texts: Vec<String> = constraints
        .all_named()
        .map(|c| c.text().to_string())
        .collect();
    assert!(!texts
        .iter()
        .any(|t| t == "load.ret_stlb_miss <= load.walk_done"));
    assert!(!texts
        .iter()
        .any(|t| t == "load.pde$_miss <= load.causes_walk"));
}

#[test]
fn constraint_count_grows_with_counter_groups() {
    // Figure 1b: the number of model constraints grows as counter groups are added.
    let m0_full = model("m0");
    let mut previous = 0usize;
    for groups in 1..=3usize {
        let space = cumulative_group_space(groups);
        let projected = m0_full.project(space.names());
        let count = deduce_constraints(&projected).len();
        assert!(
            count >= previous,
            "constraint count should not shrink when counters are added ({previous} -> {count})"
        );
        previous = count;
    }
    assert!(
        previous >= 10,
        "three groups should imply a double-digit constraint count"
    );
}

#[test]
fn violated_constraints_explain_lp_infeasibility() {
    // For an infeasible observation, at least one deduced constraint must be
    // violated, and for a feasible one, none may be.
    let space_names = [
        "load.ret",
        "load.ret_stlb_miss",
        "load.causes_walk",
        "load.walk_done",
        "load.walk_done_4k",
        "load.walk_done_2m",
        "load.walk_done_1g",
        "load.pde$_miss",
    ];
    let m0 = model("m0").project(&space_names);
    let constraints = deduce_constraints(&m0);
    let checker = FeasibilityChecker::new(&m0);

    // Infeasible: more PDE misses than walks.
    let bad = Observation::exact("bad", &[1000.0, 100.0, 50.0, 50.0, 50.0, 0.0, 0.0, 80.0]);
    let report = checker.check(&bad, Some(&constraints));
    assert!(!report.feasible);
    assert!(!report.violated.is_empty());
    // The reported violations must point at the counters responsible for the
    // inconsistency (PDE misses exceeding walks / misses not matching walks).
    assert!(report
        .violated
        .iter()
        .any(|c| c.text().contains("load.pde$_miss") || c.text().contains("load.ret_stlb_miss")));

    // Feasible: a conventional profile.
    let good = Observation::exact(
        "good",
        &[1000.0, 100.0, 100.0, 100.0, 100.0, 0.0, 0.0, 40.0],
    );
    let report = checker.check(&good, Some(&constraints));
    assert!(report.feasible);
    assert!(report.violated.is_empty());
}

#[test]
fn equalities_capture_counter_identities() {
    // stlb_hit = stlb_hit_4k + stlb_hit_2m must appear as an equality once the STLB
    // group is included.
    let m4 = model("m4").project(&[
        "load.stlb_hit",
        "load.stlb_hit_4k",
        "load.stlb_hit_2m",
        "load.ret",
    ]);
    let constraints = deduce_constraints(&m4);
    assert!(constraints
        .all_named()
        .any(|c| c.is_equality() && c.involved_counters() == 3));
}

#[test]
fn full_model_constraint_deduction_is_consistent_with_generators() {
    // Every generator of the cone satisfies every deduced constraint (on a
    // projected space to keep the hull computation fast).
    let projected = model("m4").project(cumulative_group_space(2).names());
    let constraints = deduce_constraints(&projected);
    assert!(!constraints.is_empty());
    for sig in projected.signatures() {
        let v = sig.to_rat_vector();
        for c in constraints.all_named() {
            assert!(
                c.constraint().is_satisfied_by(&v),
                "generator {:?} violates {}",
                sig,
                c.text()
            );
        }
    }
    // Count inequality vs equality split is sensible.
    let eqs = constraints.all_named().filter(|c| c.is_equality()).count();
    let ineqs = constraints
        .all_named()
        .filter(|c| matches!(c.constraint().sense(), ConstraintSense::GreaterEqualZero))
        .count();
    assert_eq!(eqs + ineqs, constraints.len());
}

#[test]
fn full_26_counter_space_has_the_documented_structure() {
    let space = full_counter_space();
    assert_eq!(space.len(), 26);
    let m4 = model("m4");
    assert_eq!(m4.dimension(), 26);
    assert!(m4.num_paths() > 100);
}
