//! End-to-end integration tests spanning the whole stack: workloads → simulated
//! Haswell MMU → PMU sampling → confidence regions → model cones → feasibility.

use counterpoint::haswell::full_counter_space;
use counterpoint::haswell::mem::PageSize;
use counterpoint::haswell::mmu::{HaswellMmu, MmuConfig};
use counterpoint::haswell::pmu::{MultiplexingPmu, PmuConfig};
use counterpoint::models::family::{
    build_feature_model, build_trigger_model, feature_sets_table3, trigger_specs_table5,
};
use counterpoint::models::harness::{case_study_campaign, HarnessConfig};
use counterpoint::workloads::{LinearAccess, RandomAccess, Workload};
use counterpoint::{FeasibilityChecker, NoiseModel, Observation};

/// The case-study observation set for a config (the non-deprecated campaign
/// path behind the old `collect_case_study_observations` shim).
fn collect(config: &HarnessConfig) -> Vec<Observation> {
    case_study_campaign(config).run_sim(&config.mmu, &config.pmu)
}

fn model(name: &str) -> counterpoint::ModelCone {
    let specs = feature_sets_table3();
    let (_, features) = specs.into_iter().find(|(n, _)| n == name).unwrap();
    build_feature_model(name, &features)
}

#[test]
fn feature_complete_model_explains_noiseless_ground_truth() {
    let mut config = HarnessConfig::quick();
    config.accesses_per_workload = 15_000;
    let observations = collect(&config);
    let m4 = model("m4");
    assert_eq!(
        FeasibilityChecker::new(&m4).count_infeasible(&observations),
        0
    );
}

#[test]
fn conventional_model_is_refuted_by_ground_truth() {
    let mut config = HarnessConfig::quick();
    config.accesses_per_workload = 15_000;
    let observations = collect(&config);
    let m0 = model("m0");
    assert!(FeasibilityChecker::new(&m0).count_infeasible(&observations) > 0);
}

#[test]
fn merging_specific_observation_separates_m7_from_m4() {
    // A 256-byte-stride linear scan produces bursts of same-page misses that merge
    // into a single walk.
    let workload = LinearAccess {
        footprint: 16 << 20,
        stride: 256,
        store_ratio: 0.0,
    };
    let accesses = workload.generate(120_000);
    let space = full_counter_space();
    let mut mmu = HaswellMmu::new(MmuConfig::haswell());
    mmu.run(accesses.iter().copied(), PageSize::Size4K);
    let obs = Observation::exact("linear-256", &mmu.counts().to_vector(&space));

    assert!(FeasibilityChecker::new(&model("m4")).is_feasible(&obs));
    assert!(
        !FeasibilityChecker::new(&model("m7")).is_feasible(&obs),
        "a model without walk merging must be refuted by the merged-walk observation"
    );
}

#[test]
fn prefetcher_specific_observation_separates_m5_from_m4() {
    // Steady-state 64-byte-stride linear scan: the prefetcher resolves most
    // translations, so walks dwarf retired STLB misses.
    let workload = LinearAccess {
        footprint: 8 << 20,
        stride: 64,
        store_ratio: 0.0,
    };
    let accesses = workload.generate(1_500_000);
    let space = full_counter_space();
    let mut mmu = HaswellMmu::new(MmuConfig::haswell());
    mmu.run(accesses.iter().copied(), PageSize::Size4K);
    let obs = Observation::exact("linear-64-steady", &mmu.counts().to_vector(&space));

    assert!(FeasibilityChecker::new(&model("m4")).is_feasible(&obs));
    assert!(
        !FeasibilityChecker::new(&model("m5")).is_feasible(&obs),
        "a model without TLB prefetching must be refuted by the prefetch-dominated observation"
    );
}

#[test]
fn bypass_specific_observation_separates_m3_from_m4() {
    // First-touch-heavy random access: most walks are replayed and complete
    // without visible walker references.
    let workload = RandomAccess {
        footprint: 2 << 30,
        store_ratio: 0.0,
        seed: 5,
    };
    let accesses = workload.generate(80_000);
    let space = full_counter_space();
    let mut mmu = HaswellMmu::new(MmuConfig::haswell());
    mmu.run(accesses.iter().copied(), PageSize::Size4K);
    let obs = Observation::exact("random-first-touch", &mmu.counts().to_vector(&space));

    assert!(FeasibilityChecker::new(&model("m4")).is_feasible(&obs));
    assert!(
        !FeasibilityChecker::new(&model("m3")).is_feasible(&obs),
        "a model without walk bypassing must be refuted by reference-free walks"
    );
}

#[test]
fn m8_without_pml4e_cache_still_explains_ground_truth() {
    // The paper finds both m4 and m8 feasible: once walk bypassing is modelled, the
    // PML4E cache is not required to explain the data.
    let mut config = HarnessConfig::quick();
    config.accesses_per_workload = 15_000;
    config.page_sizes = vec![PageSize::Size4K, PageSize::Size1G];
    let observations = collect(&config);
    let m8 = model("m8");
    assert_eq!(
        FeasibilityChecker::new(&m8).count_infeasible(&observations),
        0
    );
}

#[test]
fn noisy_multiplexed_observations_still_accept_the_true_model() {
    // With 4 physical counters multiplexing all 26 events, the samples are noisy;
    // the correlated confidence region must keep the feature-complete model
    // feasible.
    let space = full_counter_space();
    let workload = RandomAccess {
        footprint: 256 << 20,
        store_ratio: 0.2,
        seed: 11,
    };
    let accesses = workload.generate(200_000);
    let pmu = MultiplexingPmu::new(PmuConfig::default());
    let mut mmu = HaswellMmu::new(MmuConfig::haswell());
    let samples = pmu.collect(&mut mmu, &accesses, PageSize::Size4K, &space, 30);
    let obs = Observation::from_samples_with_model(
        "random-noisy",
        &samples,
        0.99,
        NoiseModel::Correlated,
    );
    assert!(FeasibilityChecker::new(&model("m4")).is_feasible(&obs));
}

#[test]
fn speculative_trigger_models_accept_everything_the_abstract_model_accepts() {
    let mut config = HarnessConfig::quick();
    config.accesses_per_workload = 10_000;
    let observations = collect(&config);
    let specs = trigger_specs_table5();
    let (name, spec) = &specs[0]; // t0
    let t0 = build_trigger_model(name, spec);
    assert_eq!(
        FeasibilityChecker::new(&t0).count_infeasible(&observations),
        0
    );
}
