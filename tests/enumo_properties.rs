//! Property tests for the grammar-enumerated model families.
//!
//! The enumeration in `counterpoint-models::enumo` promises that the
//! *presentation* of the grammar — the order productions list their
//! alternatives in — never leaks into the enumerated family: permuting the
//! feature, trigger, or abort-point lists must yield the same canonical
//! members, in the same order, under the same names, and (end to end) a
//! byte-identical session [`Report`] at every thread count.  These suites
//! drive that promise with random permutations; the vendored proptest shim
//! draws them from a deterministic per-test RNG, so failures reproduce.

use counterpoint::models::aborts::AbortPoint;
use counterpoint::models::enumo::{enumerate, EnumOptions, ModelFamily, ModelGrammar};
use counterpoint::models::family::trigger_specs_table5;
use counterpoint::models::{Feature, TriggerSpec};
use counterpoint::{Inquiry, Observation};
use counterpoint_haswell::full_counter_space;
use proptest::prelude::*;

/// Deterministic Fisher–Yates driven by a splitmix-style LCG, so a proptest
/// seed fully determines the permutation.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

/// The full case-study grammar with every production's alternatives shuffled
/// by `seed` (seed 0 leaves the canonical order in place for `i = 1`-sized
/// prefixes only by accident — the LCG still permutes).
fn shuffled_case_study(seed: u64) -> ModelGrammar {
    let mut features = Feature::ALL.to_vec();
    let mut triggers = trigger_specs_table5();
    let mut aborts = AbortPoint::ALL.to_vec();
    shuffle(&mut features, seed);
    shuffle(&mut triggers, seed.wrapping_add(1));
    shuffle(&mut aborts, seed.wrapping_add(2));
    ModelGrammar::case_study()
        .with_features(features)
        .with_triggers(triggers)
        .with_abort_points(aborts)
}

/// A stable projection of an enumerated family: everything the canonical
/// order pins down, in order.
fn family_fingerprint(family: &ModelFamily) -> Vec<String> {
    let mut lines = vec![format!(
        "raw={} canonical={} members={} skips={} dupes={}",
        family.raw_candidates,
        family.canonical_candidates,
        family.len(),
        family.skipped_path_limit,
        family.structural_duplicates,
    )];
    for member in &family.members {
        lines.push(format!("{}: {}", member.name, member.spec.signature()));
    }
    for group in &family.groups {
        lines.push(format!(
            "group {} [{}] -> {}",
            group.signature,
            group.universe_names().join(","),
            group.members.join(","),
        ));
    }
    lines
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Permuting every production of the case-study grammar leaves the
    /// canonical family — member names, spec signatures, assumption groups,
    /// and all the accounting — exactly where the canonical-order grammar
    /// puts it.
    #[test]
    fn enumeration_is_invariant_under_production_permutation(seed in 1u64..100_000) {
        let options = EnumOptions {
            max_models: 64,
            ..EnumOptions::default()
        };
        let canonical = enumerate(&ModelGrammar::case_study(), &options);
        let permuted = enumerate(&shuffled_case_study(seed), &options);
        prop_assert!(canonical.raw_candidates >= 1000);
        prop_assert_eq!(
            family_fingerprint(&canonical),
            family_fingerprint(&permuted)
        );
    }

    /// End to end: a session over a permuted grammar serializes to the very
    /// bytes the canonical grammar produces, at 1, 2, and 8 worker threads.
    #[test]
    fn report_json_survives_permutation_and_threading(seed in 1u64..100_000) {
        let space = full_counter_space();
        // One observation every candidate refutes (completing more walks than
        // are started violates a shared facet) plus the trivially feasible
        // origin — small enough that twelve cases stay cheap, rich enough
        // that every group's search does real work.
        let mut impossible = vec![0.0; space.len()];
        impossible[space.index_of("load.ret").unwrap()] = 1000.0;
        impossible[space.index_of("load.causes_walk").unwrap()] = 10.0;
        impossible[space.index_of("load.walk_done").unwrap()] = 100.0;
        impossible[space.index_of("load.walk_done_4k").unwrap()] = 100.0;
        let observations = vec![
            Observation::exact("impossible-walks", &impossible),
            Observation::exact("origin", &vec![0.0; space.len()]),
        ];

        let mut features = vec![Feature::TlbPrefetch, Feature::WalkBypass];
        let mut triggers = vec![
            ("t0".to_string(), TriggerSpec::t0()),
            ("t1".to_string(), trigger_specs_table5()[1].1),
        ];
        let mut aborts = vec![AbortPoint::DuringWalk, AbortPoint::AfterPsc];
        shuffle(&mut features, seed);
        shuffle(&mut triggers, seed.wrapping_add(1));
        shuffle(&mut aborts, seed.wrapping_add(2));

        let options = EnumOptions {
            max_models: 24,
            ..EnumOptions::default()
        };
        let run = |grammar: ModelGrammar, threads: usize| {
            Inquiry::new()
                .observations(observations.clone())
                .model_grammar(grammar, options)
                .threads(threads)
                .run()
                .unwrap()
                .to_json()
        };
        let canonical = run(
            ModelGrammar::case_study()
                .with_features(vec![Feature::TlbPrefetch, Feature::WalkBypass])
                .with_triggers(vec![
                    ("t0".to_string(), TriggerSpec::t0()),
                    ("t1".to_string(), trigger_specs_table5()[1].1),
                ])
                .with_abort_points(vec![AbortPoint::DuringWalk, AbortPoint::AfterPsc]),
            1,
        );
        for threads in [1usize, 2, 8] {
            let grammar = ModelGrammar::case_study()
                .with_features(features.clone())
                .with_triggers(triggers.clone())
                .with_abort_points(aborts.clone());
            prop_assert_eq!(&run(grammar, threads), &canonical, "threads = {}", threads);
        }
    }
}
