//! Property tests for the two-tier LP core.
//!
//! The tier-1 [`FactorTableau`] promises two things that ordinary example
//! tests cannot pin down:
//!
//! 1. **Bit-for-bit reproducibility.**  Every reduction goes through one
//!    deterministic 4-lane kernel, so the product-form (eta) updated engine
//!    must produce *identical* floats — verdicts, basis, basic values, Farkas
//!    multipliers — to a straightforward dense-`B⁻¹` implementation of the
//!    same pivot rules, on any input and across any pivot sequence.  The
//!    [`DenseRef`] engine below stores `B⁻¹` as one interleaved dense block
//!    (the representation `Tableau` uses) and reduces with the same fixed
//!    `(l0 + l2) + (l1 + l3)` lane fold; the property compares every solve of
//!    a warm-started sequence bitwise.
//! 2. **Escalation soundness.**  A *confident* tier-1 verdict must agree with
//!    the exact engine, and the two-tier [`BatchFeasibility`] front end must
//!    never answer differently from the always-exact
//!    [`FeasibilityChecker`] — tier-2 escalation may cost time, never
//!    correctness.
//!
//! The vendored proptest shim draws inputs from a deterministic per-test RNG,
//! so these suites are reproducible run-to-run.

use counterpoint::lp::factor::{dot4, dot4_diff, padded, LANES};
use counterpoint::lp::{FactorTableau, Tableau};
use counterpoint::mudd::{CounterSignature, CounterSpace};
use counterpoint::{BatchFeasibility, FeasibilityChecker, ModelCone, Observation};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// The production engine's tolerances, restated independently.  If the
/// constants in `counterpoint-lp` drift, these properties fail and force the
/// reference (and the escalation-contract documentation) to be revisited.
const EPSILON: f64 = 1e-9;
const TOL: f64 = 1e-7;
const FEASIBLE_MARGIN: f64 = -1e-8;
const INFEASIBLE_MARGIN: f64 = 1e-6;
const RISKY_ENTRY: f64 = 1e-8;

/// The deterministic 4-lane fold `Σ a·b`, written independently of the
/// production kernels: four independent lane accumulators over whole chunks,
/// folded as `(l0 + l2) + (l1 + l3)`.
fn fold_dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len() % LANES, 0);
    let mut l = [0.0f64; LANES];
    for (ca, cb) in a.chunks_exact(LANES).zip(b.chunks_exact(LANES)) {
        for lane in 0..LANES {
            l[lane] += ca[lane] * cb[lane];
        }
    }
    (l[0] + l[2]) + (l[1] + l[3])
}

/// The 4-lane difference fold `Σ (a − b)·c` (the flow-column FTRAN shape).
fn fold_dot_diff(a: &[f64], b: &[f64], c: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    assert_eq!(a.len() % LANES, 0);
    let mut l = [0.0f64; LANES];
    for ((ca, cb), cc) in a
        .chunks_exact(LANES)
        .zip(b.chunks_exact(LANES))
        .zip(c.chunks_exact(LANES))
    {
        for lane in 0..LANES {
            l[lane] += (ca[lane] - cb[lane]) * cc[lane];
        }
    }
    (l[0] + l[2]) + (l[1] + l[3])
}

/// Reference counterpart of `FastOutcome`.
#[derive(Debug, PartialEq, Eq)]
struct RefOutcome {
    feasible: bool,
    confident: bool,
}

/// A dense-`B⁻¹` dual simplex over the band system `lo ≤ A·x ≤ hi`, `x ≥ 0`,
/// implementing the same pivot rules as [`FactorTableau`] on the
/// representation it replaced: one interleaved `m × m` basis inverse, updated
/// in place, with every reduction going through the shared 4-lane fold.  The
/// split `ge`/`le` rows the production engine stores are gathered on the fly;
/// the padded tails are fresh `+0.0`, which IEEE addition treats as absorbing,
/// so gathered and stored rows reduce to identical bits.
struct DenseRef {
    n: usize,
    d: usize,
    dpad: usize,
    bands: Vec<Vec<f64>>,
    /// `m × m` interleaved `B⁻¹` (row-major).
    binv: Vec<f64>,
    identity: bool,
    rhs: Vec<f64>,
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    farkas: Vec<f64>,
    infeasible: bool,
}

impl DenseRef {
    fn new(n: usize, bands: &[Vec<f64>]) -> DenseRef {
        let d = bands.len();
        let m = 2 * d;
        let mut binv = vec![0.0; m * m];
        for i in 0..m {
            binv[i * m + i] = 1.0;
        }
        let mut in_basis = vec![false; n + m];
        for slot in in_basis.iter_mut().skip(n) {
            *slot = true;
        }
        DenseRef {
            n,
            d,
            dpad: padded(d),
            bands: bands.to_vec(),
            binv,
            identity: true,
            rhs: vec![0.0; m],
            basis: (n..n + m).collect(),
            in_basis,
            farkas: vec![0.0; m],
            infeasible: false,
        }
    }

    fn m(&self) -> usize {
        2 * self.d
    }

    /// Row `i` of `B⁻¹`, gathered into padded per-side buffers
    /// (`ge[k] = B⁻¹[i][2k]`, `le[k] = B⁻¹[i][2k+1]`).
    fn split_row(&self, i: usize) -> (Vec<f64>, Vec<f64>) {
        let m = self.m();
        let mut ge = vec![0.0; self.dpad];
        let mut le = vec![0.0; self.dpad];
        for k in 0..self.d {
            ge[k] = self.binv[i * m + 2 * k];
            le[k] = self.binv[i * m + 2 * k + 1];
        }
        (ge, le)
    }

    /// Column `j` of the band matrix, padded.
    fn band_col(&self, j: usize) -> Vec<f64> {
        let mut c = vec![0.0; self.dpad];
        for (band, slot) in self.bands.iter().zip(c.iter_mut()) {
            *slot = band[j];
        }
        c
    }

    /// Warm dual-simplex resolve under new bounds.  Returns `None` if the
    /// iteration cap is hit (the production engine would eventually switch to
    /// Bland's rule there; such cases are rejected rather than compared).
    fn resolve(&mut self, lo: &[f64], hi: &[f64]) -> Option<RefOutcome> {
        let m = self.m();
        self.infeasible = false;
        let mut neg_lo = vec![0.0; self.dpad];
        let mut hi_pad = vec![0.0; self.dpad];
        for k in 0..self.d {
            neg_lo[k] = -lo[k];
            hi_pad[k] = hi[k];
        }
        if self.identity {
            for k in 0..self.d {
                self.rhs[2 * k] = -lo[k];
                self.rhs[2 * k + 1] = hi[k];
            }
        } else {
            for i in 0..m {
                let (ge, le) = self.split_row(i);
                self.rhs[i] = fold_dot(&ge, &neg_lo) + fold_dot(&le, &hi_pad);
            }
        }
        for _ in 0..10_000 {
            // Leaving row: the first row attaining the strict minimum basic
            // value, if that minimum violates the acceptance tolerance.
            let mut leave = None;
            let mut worst = -TOL;
            let mut min_rhs = f64::INFINITY;
            for (i, &v) in self.rhs.iter().enumerate() {
                min_rhs = min_rhs.min(v);
                if v < worst {
                    worst = v;
                    leave = Some(i);
                }
            }
            let Some(row) = leave else {
                return Some(RefOutcome {
                    feasible: true,
                    confident: m == 0 || min_rhs >= FEASIBLE_MARGIN,
                });
            };

            // Price the leaving row: flow column j carries
            // Σ_k (π_{2k+1} − π_{2k})·A_kj, slack column i carries π_i.
            let (ge, le) = self.split_row(row);
            let mut delta = vec![0.0; self.dpad];
            for k in 0..self.dpad {
                delta[k] = le[k] - ge[k];
            }
            let priced: Vec<(usize, f64)> = (0..self.n)
                .filter(|&j| !self.in_basis[j])
                .map(|j| (j, fold_dot(&delta, &self.band_col(j))))
                .collect();
            let mut enter = None;
            let mut best = EPSILON;
            for &(j, a) in &priced {
                if a < -EPSILON && -a > best {
                    best = -a;
                    enter = Some(j);
                }
            }
            for i in 0..m {
                let j = self.n + i;
                if self.in_basis[j] {
                    continue;
                }
                let a = self.binv[row * m + i];
                if a < -EPSILON && -a > best {
                    best = -a;
                    enter = Some(j);
                }
            }
            let Some(col) = enter else {
                self.farkas
                    .copy_from_slice(&self.binv[row * m..(row + 1) * m]);
                self.infeasible = true;
                let risky = |a: f64| a != 0.0 && a < RISKY_ENTRY;
                let any_risky = priced.iter().any(|&(_, a)| risky(a))
                    || (0..m).any(|i| !self.in_basis[self.n + i] && risky(self.binv[row * m + i]));
                return Some(RefOutcome {
                    feasible: false,
                    confident: self.rhs[row] <= -INFEASIBLE_MARGIN && !any_risky,
                });
            };

            // FTRAN: the entering column in basis coordinates.
            let mut colbuf = vec![0.0; m];
            if col < self.n {
                let bc = self.band_col(col);
                for (i, c) in colbuf.iter_mut().enumerate() {
                    let (gei, lei) = self.split_row(i);
                    *c = fold_dot_diff(&lei, &gei, &bc);
                }
            } else {
                let s = col - self.n;
                for (i, c) in colbuf.iter_mut().enumerate() {
                    *c = self.binv[i * m + s];
                }
            }

            // Eta elimination on the dense block.
            let inv = 1.0 / colbuf[row];
            for v in &mut self.binv[row * m..(row + 1) * m] {
                *v *= inv;
            }
            self.rhs[row] *= inv;
            for (i, &factor) in colbuf.iter().enumerate() {
                if i == row || factor == 0.0 {
                    continue;
                }
                for s in 0..m {
                    let pivot_val = self.binv[row * m + s];
                    self.binv[i * m + s] -= factor * pivot_val;
                }
                self.rhs[i] -= factor * self.rhs[row];
            }
            self.identity = false;
            let leaving = self.basis[row];
            self.in_basis[leaving] = false;
            self.in_basis[col] = true;
            self.basis[row] = col;
        }
        None
    }

    /// Structural basic values, in row order (mirrors
    /// `FactorTableau::basic_flows`).
    fn basic_flows(&self) -> Vec<(usize, u64)> {
        self.basis
            .iter()
            .zip(self.rhs.iter())
            .filter_map(|(&j, &v)| (j < self.n).then_some((j, v.to_bits())))
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `dot4` reduces exactly like the documented 4-lane fold, whichever
    /// (scalar or AVX) body the runtime dispatch picks.
    #[test]
    fn dot4_matches_four_lane_reference(
        lanes in 1usize..=8,
        a in pvec(-8.0f64..8.0, 32..33),
        b in pvec(-8.0f64..8.0, 32..33),
    ) {
        let len = LANES * lanes;
        let x = &a[..len];
        let y = &b[..len];
        prop_assert_eq!(dot4(x, y).to_bits(), fold_dot(x, y).to_bits());
    }

    /// Same for the difference-dot FTRAN kernel.
    #[test]
    fn dot4_diff_matches_four_lane_reference(
        lanes in 1usize..=8,
        a in pvec(-8.0f64..8.0, 32..33),
        b in pvec(-8.0f64..8.0, 32..33),
        c in pvec(-8.0f64..8.0, 32..33),
    ) {
        let len = LANES * lanes;
        let (x, y, z) = (&a[..len], &b[..len], &c[..len]);
        prop_assert_eq!(
            dot4_diff(x, y, z).to_bits(),
            fold_dot_diff(x, y, z).to_bits()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The LU-updated engine (refactorization disabled, so the eta product is
    /// never rebuilt) matches the dense-`B⁻¹` reference bit for bit across a
    /// warm-started sequence of solves: verdict, confidence, basis, basic
    /// values and Farkas multipliers all compare on exact float bits, for
    /// every pivot sequence the random bounds drive the engines through.
    #[test]
    fn lu_updated_solves_match_dense_reference_bitwise(
        d in 1usize..=3,
        n in 1usize..=6,
        coeffs in pvec(-2.0f64..2.0, 18..19),
        bounds in pvec(-1.5f64..1.5, 24..25),
        num_solves in 1usize..=4,
    ) {
        let bands: Vec<Vec<f64>> = (0..d).map(|k| coeffs[k * n..(k + 1) * n].to_vec()).collect();
        let mut fast = FactorTableau::band(n, &bands);
        fast.set_refactor_interval(usize::MAX);
        let mut dense = DenseRef::new(n, &bands);

        for s in 0..num_solves {
            let base = s * 2 * d;
            let lo: Vec<f64> = (0..d).map(|k| bounds[base + k]).collect();
            let hi: Vec<f64> = (0..d).map(|k| bounds[base + d + k]).collect();

            let Some(reference) = dense.resolve(&lo, &hi) else {
                return Err(TestCaseError::reject("reference hit its iteration cap"));
            };
            let outcome = match fast.resolve(&lo, &hi) {
                Ok(o) => o,
                Err(e) => return Err(TestCaseError::fail(format!(
                    "factorized engine failed where the reference terminated: {e:?}"
                ))),
            };

            prop_assert_eq!(
                RefOutcome { feasible: outcome.feasible, confident: outcome.confident },
                reference,
                "solve {s}: outcome diverged"
            );
            prop_assert_eq!(fast.basis(), dense.basis.as_slice(), "solve {s}: basis diverged");
            let fast_flows: Vec<(usize, u64)> =
                fast.basic_flows().map(|(j, v)| (j, v.to_bits())).collect();
            prop_assert_eq!(fast_flows, dense.basic_flows(), "solve {s}: basic values diverged");
            match fast.farkas_multipliers() {
                Some(pi) => {
                    prop_assert!(dense.infeasible, "solve {s}: only the fast engine certified");
                    let fast_bits: Vec<u64> = pi.iter().map(|v| v.to_bits()).collect();
                    let dense_bits: Vec<u64> = dense.farkas.iter().map(|v| v.to_bits()).collect();
                    prop_assert_eq!(fast_bits, dense_bits, "solve {s}: Farkas rows diverged");
                }
                None => prop_assert!(
                    !dense.infeasible,
                    "solve {s}: only the reference certified infeasibility"
                ),
            }
        }
    }

    /// With periodic refactorization enabled (random, aggressive intervals so
    /// rebuilds actually trigger), a *confident* tier-1 verdict always agrees
    /// with the exact dense engine on the same warm-started bounds sequence —
    /// the escalation contract `BatchFeasibility` relies on: only
    /// low-confidence verdicts ever need tier 2.
    #[test]
    fn confident_verdicts_match_exact_engine_across_refactorization(
        d in 1usize..=3,
        n in 1usize..=6,
        interval in 1usize..=6,
        coeffs in pvec(-2.0f64..2.0, 18..19),
        bounds in pvec(-1.5f64..1.5, 36..37),
        num_solves in 1usize..=6,
    ) {
        let bands: Vec<Vec<f64>> = (0..d).map(|k| coeffs[k * n..(k + 1) * n].to_vec()).collect();
        let mut fast = FactorTableau::band(n, &bands);
        fast.set_refactor_interval(interval);
        let mut exact = Tableau::band(n, &bands);

        for s in 0..num_solves {
            let base = s * 2 * d;
            let lo: Vec<f64> = (0..d).map(|k| bounds[base + k]).collect();
            let hi: Vec<f64> = (0..d).map(|k| bounds[base + d + k]).collect();

            let (Ok(outcome), Ok(exact_feasible)) = (fast.resolve(&lo, &hi), exact.resolve(&lo, &hi))
            else {
                return Err(TestCaseError::reject("an engine hit its iteration limit"));
            };
            if outcome.confident {
                prop_assert_eq!(
                    outcome.feasible,
                    exact_feasible,
                    "solve {s}: confident tier-1 verdict contradicts the exact engine"
                );
            }
        }
    }
}

/// Builds a model cone over `dim` counters from raw signature counts.
fn cone_from_counts(dim: usize, num_sigs: usize, sig_data: &[u32]) -> ModelCone {
    let names = ["c0", "c1", "c2", "c3"];
    let space = CounterSpace::new(&names[..dim]);
    let sigs: Vec<CounterSignature> = (0..num_sigs)
        .map(|s| CounterSignature::from_counts(sig_data[s * dim..(s + 1) * dim].to_vec()))
        .collect();
    ModelCone::from_signatures("prop", &space, sigs, num_sigs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tier-2 escalation never changes a verdict: the two-tier
    /// `BatchFeasibility` front end — cold per observation and warm-started
    /// across a whole observation set — answers exactly like the always-exact
    /// `FeasibilityChecker` on random cones, random points, and points
    /// constructed to lie inside the cone (nonnegative signature
    /// combinations, so both branches of the verdict get exercised).
    #[test]
    fn two_tier_verdicts_match_always_exact_checker(
        dim in 2usize..=4,
        num_sigs in 1usize..=5,
        sig_data in pvec(0u32..7, 20..21),
        obs_data in pvec(0.0f64..8.0, 24..25),
        weights in pvec(0.0f64..3.0, 5..6),
    ) {
        let cone = cone_from_counts(dim, num_sigs, &sig_data);
        let checker = FeasibilityChecker::new(&cone);

        let mut observations: Vec<Observation> = (0..6)
            .map(|i| Observation::exact(&format!("o{i}"), &obs_data[i * dim..(i + 1) * dim]))
            .collect();
        // Two in-cone points: nonnegative combinations of the signatures.
        for (label, scale) in [("in0", 1.0), ("in1", 0.25)] {
            let mut point = vec![0.0; dim];
            for (s, &w) in weights.iter().take(num_sigs).enumerate() {
                for (k, p) in point.iter_mut().enumerate() {
                    *p += scale * w * f64::from(sig_data[s * dim + k]);
                }
            }
            observations.push(Observation::exact(label, &point));
        }

        let mut warm = BatchFeasibility::new(&cone);
        for obs in &observations {
            let expected = checker.is_feasible(obs);
            prop_assert_eq!(
                BatchFeasibility::new(&cone).is_feasible(obs),
                expected,
                "cold two-tier verdict diverged on {}",
                obs.name()
            );
            prop_assert_eq!(
                warm.is_feasible(obs),
                expected,
                "warm two-tier verdict diverged on {}",
                obs.name()
            );
        }
    }
}
