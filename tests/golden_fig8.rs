//! Golden reproduction of the paper's Figure 8 search trajectory, end-to-end
//! through the session layer: one `Inquiry` collects the reduced case-study
//! campaign from the simulated Haswell MMU and runs the discovery/elimination
//! refinement search over the five Table 4 features.  The resulting
//! [`SearchGraph`] is pinned byte-for-byte against a checked-in JSON golden —
//! any change to the campaign, the feasibility engine or the search layer
//! that moves the trajectory shows up as a diff of this file.  (The
//! experiments binary's `fig10` path covers the full-scale variant.)

use counterpoint::models::family::build_feature_model;
use counterpoint::models::harness::HarnessConfig;
use counterpoint::models::Feature;
use counterpoint::{FeatureSet, Inquiry, SearchGraph};

/// The checked-in expected search graph (regenerate by running this test with
/// `GOLDEN_REGEN=1` and copying the printed JSON, or see EXPERIMENTS.md).
const EXPECTED: &str = include_str!("golden/fig8_search_graph.json");

fn search_graph() -> SearchGraph {
    let mut config = HarnessConfig::quick();
    config.accesses_per_workload = 30_000;
    let feature_names: Vec<&str> = Feature::ALL.iter().map(|f| f.name()).collect();
    let report = Inquiry::new()
        .harness(config)
        .refine(
            |features: &FeatureSet| build_feature_model("candidate", features),
            &feature_names,
            FeatureSet::new(),
        )
        .run()
        .expect("the simulated harness cannot fail");
    report
        .refinement
        .expect("the refinement stage was configured")
}

#[test]
fn fig8_search_trajectory_matches_the_golden_graph() {
    let graph = search_graph();
    let rendered = serde_json::to_string_pretty(&graph).expect("graphs serialize") + "\n";
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        println!("{rendered}");
    }
    assert_eq!(
        rendered, EXPECTED,
        "the Fig. 8 search trajectory moved; if intentional, regenerate \
         tests/golden/fig8_search_graph.json"
    );

    // Qualitative pins on top of the byte equality, so a regenerated golden
    // still has to reproduce the paper's conclusions.
    assert!(
        !graph.steps[0].feasible,
        "the empty (conventional-wisdom) model must start refuted"
    );
    assert!(graph.steps.iter().any(|s| s.feasible));
    assert!(!graph.minimal_feasible.is_empty());
    let essential = graph.essential_features();
    for feature in [
        Feature::EarlyPsc,
        Feature::Merging,
        Feature::TlbPrefetch,
        Feature::WalkBypass,
    ] {
        assert!(
            essential.contains(&feature.name().to_string()),
            "{feature} must be essential, got {essential:?}"
        );
    }

    // The golden also matches a deserialized round-trip of itself (guards the
    // serde path the report embeds the graph through).
    let parsed: SearchGraph = serde_json::from_str(EXPECTED).expect("golden parses");
    assert_eq!(parsed, graph);
}
