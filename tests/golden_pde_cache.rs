//! Golden end-to-end reproduction of the paper's running example (Figures 2
//! and 6): the expert's PDE-cache model is refuted by the microbenchmark
//! observation, and the refined model (early PDE-cache lookup + aborts) is
//! feasible for the same data.

use counterpoint::{
    compile_uop, deduce_constraints, CounterSpace, FeasibilityChecker, Inquiry, ModelCone,
    Observation,
};

/// The expert's initial mental model: the walker is initialised before the PDE
/// cache is consulted, so every PDE-cache miss implies a walk.
const INITIAL_MODEL: &str = r#"
    incr load.causes_walk;
    do LookupPde$;
    switch Pde$Status { Hit => pass; Miss => incr load.pde$_miss };
    done;
"#;

/// The refinement of the paper's Figure 6c: the PDE cache is looked up before
/// the walk starts, and translation requests may abort in between.
const REFINED_MODEL: &str = r#"
    do LookupPde$;
    switch Pde$Status { Hit => pass; Miss => incr load.pde$_miss };
    switch Abort { Yes => done; No => incr load.causes_walk };
    done;
"#;

fn counters() -> CounterSpace {
    CounterSpace::new(&["load.causes_walk", "load.pde$_miss"])
}

fn cone(name: &str, source: &str) -> ModelCone {
    let space = counters();
    let model = compile_uop(name, source, &space).expect("model source compiles");
    ModelCone::from_mudd(&model).expect("μpath enumeration succeeds")
}

/// The observation of the paper's running example: the hardware reports more
/// PDE-cache misses than walks (1000 walks, 1400 misses).
fn microbenchmark() -> Observation {
    Observation::exact("microbenchmark", &[1_000.0, 1_400.0])
}

#[test]
fn initial_pde_cache_model_is_refuted_by_the_microbenchmark() {
    let cone = cone("initial", INITIAL_MODEL);
    assert!(!FeasibilityChecker::new(&cone).is_feasible(&microbenchmark()));
}

#[test]
fn initial_model_implies_misses_bounded_by_walks() {
    // The Table 1 style constraint behind the refutation: under the initial
    // model, `load.pde$_miss <= load.causes_walk` must be among the deduced
    // facets, and it is exactly the constraint the microbenchmark violates.
    let cone = cone("initial", INITIAL_MODEL);
    let constraints = deduce_constraints(&cone);
    let rendered: Vec<String> = constraints
        .all_named()
        .map(|c| c.text().to_string())
        .collect();
    assert!(
        rendered
            .iter()
            .any(|t| t.contains("load.pde$_miss") && t.contains("load.causes_walk")),
        "expected a pde$_miss / causes_walk facet, got: {rendered:?}"
    );

    let report = FeasibilityChecker::new(&cone).check(&microbenchmark(), Some(&constraints));
    assert!(!report.feasible);
    assert!(
        !report.violated.is_empty(),
        "the refutation must name at least one violated constraint"
    );
}

#[test]
fn refined_model_is_feasible_for_the_same_observation() {
    let cone = cone("refined", REFINED_MODEL);
    assert!(FeasibilityChecker::new(&cone).is_feasible(&microbenchmark()));
}

#[test]
fn session_verdicts_carry_checkable_certificates() {
    // The whole running example as one `Inquiry` session.  Acceptance bar:
    // every `Refuted` verdict carries a non-empty Farkas certificate whose
    // inner product with the observation center is negative — checkable
    // evidence, not decoration.
    let report = Inquiry::new()
        .observations(vec![microbenchmark()])
        .model("initial", cone("initial", INITIAL_MODEL))
        .model("refined", cone("refined", REFINED_MODEL))
        .deduce_constraints(true)
        .run()
        .expect("the inquiry is fully wired");

    assert_eq!(report.feasible_models(), vec!["refined"]);
    let initial = report.model("initial").expect("initial was tested");
    assert_eq!(initial.infeasible_count, 1);
    for (verdict, observation) in initial.verdicts.iter().zip(&report.observations) {
        assert!(verdict.is_refuted());
        let certificate = verdict
            .farkas_certificate()
            .expect("every golden refutation must carry a certificate");
        assert!(!certificate.is_empty());
        let center_proj: f64 = certificate
            .iter()
            .zip(&observation.mean)
            .map(|(c, v)| c * v)
            .sum();
        assert!(
            center_proj < 0.0,
            "certificate must separate the observation center (got {center_proj})"
        );
        // And the refutation names the Table 1 constraint behind it.
        assert!(verdict
            .violated_constraints()
            .iter()
            .any(|t| t.contains("load.pde$_miss") && t.contains("load.causes_walk")));
    }
    // The feasible refined model carries a witness cone point instead.
    let refined = report.model("refined").expect("refined was tested");
    assert!(refined.verdicts[0].witness().is_some());

    // The golden session serializes deterministically and round-trips.
    let json = report.to_json();
    let parsed = counterpoint::Report::from_json(&json).expect("report must parse");
    assert_eq!(parsed.to_json(), json);
}

#[test]
fn refinement_strictly_relaxes_the_initial_model() {
    // Every observation feasible under the initial model stays feasible under
    // the refined one (the refinement only adds behaviours): spot-check the
    // lattice of small integer observations.
    let initial = cone("initial", INITIAL_MODEL);
    let refined = cone("refined", REFINED_MODEL);
    let initial_checker = FeasibilityChecker::new(&initial);
    let refined_checker = FeasibilityChecker::new(&refined);
    let mut initial_feasible = 0usize;
    for walks in 0..8u32 {
        for misses in 0..8u32 {
            let obs = Observation::exact("grid", &[f64::from(walks), f64::from(misses)]);
            if initial_checker.is_feasible(&obs) {
                initial_feasible += 1;
                assert!(
                    refined_checker.is_feasible(&obs),
                    "refinement must not refute ({walks}, {misses})"
                );
            }
        }
    }
    assert!(
        initial_feasible > 0,
        "the grid must exercise the initial cone"
    );
}
