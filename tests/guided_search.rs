//! Integration tests for guided model exploration over the Haswell feature
//! lattice (the paper's Section 5 / Appendix C.1 search, at reduced scale).

use counterpoint::models::family::{build_feature_model, feature_sets_table3};
use counterpoint::models::harness::{case_study_campaign, HarnessConfig};
use counterpoint::models::Feature;
use counterpoint::{ExplorationModel, FeatureSet, Inquiry, LatticeSearch, Report};

fn observations() -> Vec<counterpoint::Observation> {
    let mut config = HarnessConfig::quick();
    config.accesses_per_workload = 30_000;
    case_study_campaign(&config).run_sim(&config.mmu, &config.pmu)
}

/// Runs the Table 3 model family against the reduced case-study observations
/// through the session layer.
fn table3_report() -> Report {
    let models: Vec<ExplorationModel> = feature_sets_table3()
        .into_iter()
        .map(|(name, features)| {
            let cone = build_feature_model(&name, &features);
            ExplorationModel::new(&name, features, cone)
        })
        .collect();
    Inquiry::new()
        .observations(observations())
        .models(models)
        .run()
        .expect("the inquiry is fully wired")
}

#[test]
fn table3_evaluation_reproduces_the_qualitative_ranking() {
    let report = table3_report();
    let count = |name: &str| report.model(name).map(|m| m.infeasible_count).unwrap();

    // The feature-complete model and its PML4E-free sibling explain everything.
    assert_eq!(count("m4"), 0);
    assert_eq!(count("m8"), 0);
    // The conventional-wisdom model is the worst or tied-worst.
    let worst = report
        .models
        .iter()
        .map(|m| m.infeasible_count)
        .max()
        .unwrap();
    assert_eq!(count("m0"), worst);
    assert!(worst > 0);
    // Dropping merging or early PSC lookup from the full model reintroduces
    // violations.
    assert!(count("m6") > 0, "m6 (no early PSC) should be refuted");
    assert!(count("m7") > 0, "m7 (no merging) should be refuted");
    // Dropping walk bypassing reintroduces violations.
    assert!(count("m3") > 0, "m3 (no walk bypass) should be refuted");
}

#[test]
fn essential_features_match_the_papers_conclusions() {
    let report = table3_report();
    let essential = report
        .essential_features
        .clone()
        .expect("at least one feasible model");
    // Every feasible Table 3 model includes early PSC lookup, merging, prefetching
    // and walk bypassing; the PML4E cache is not essential (m8 lacks it).
    for feature in [
        Feature::EarlyPsc,
        Feature::Merging,
        Feature::TlbPrefetch,
        Feature::WalkBypass,
    ] {
        assert!(
            essential.contains(&feature.name().to_string()),
            "{feature} should be essential, got {essential:?}"
        );
    }
    assert!(!essential.contains(&Feature::Pml4eCache.name().to_string()));
}

#[test]
fn guided_search_discovers_a_feasible_model_from_scratch() {
    let observations = observations();
    let feature_names: Vec<&str> = Feature::ALL.iter().map(|f| f.name()).collect();
    let search = LatticeSearch::new(
        |features: &FeatureSet| build_feature_model("candidate", features),
        &feature_names,
    );
    let graph = search.run(&FeatureSet::new(), &observations);

    // The deprecated `GuidedSearch` shim delegates to the same engine and
    // must return the identical graph.
    #[allow(deprecated)]
    let shim = counterpoint::GuidedSearch::new(
        |features: &FeatureSet| build_feature_model("candidate", features),
        &feature_names,
    );
    assert_eq!(shim.run(&FeatureSet::new(), &observations), graph);

    assert!(
        !graph.steps[0].feasible,
        "the empty model must start infeasible"
    );
    assert!(
        graph.steps.iter().any(|s| s.feasible),
        "discovery must reach a feasible model"
    );
    assert!(!graph.minimal_feasible.is_empty());
    // The discovery chain is connected: every non-initial discovery step has an
    // incoming edge.
    for (idx, step) in graph.steps.iter().enumerate().skip(1) {
        if matches!(
            step.phase,
            counterpoint::core::explore::SearchPhase::Discovery
        ) {
            assert!(graph.edges.iter().any(|e| e.to == idx));
        }
    }
    // Whatever minimal feasible sets the search finds must themselves be feasible
    // when rebuilt and re-evaluated.
    for set in &graph.minimal_feasible {
        let features: FeatureSet = set.iter().cloned().collect();
        let cone = build_feature_model("minimal", &features);
        let infeasible =
            counterpoint::FeasibilityChecker::new(&cone).count_infeasible(&observations);
        assert_eq!(infeasible, 0, "minimal set {set:?} must be feasible");
    }
}
