//! Thread-determinism property tests for the lattice search: the serialized
//! [`SearchGraph`] — and the whole session [`Report`] embedding it — must be
//! byte-identical for 1, 2 and 8 search threads and across repeated runs with
//! the same seed.  Worker timing may change *how* a count was obtained
//! (memo, certificate prune, LP) but never the count, so the JSON cannot
//! move.

use counterpoint::models::family::build_feature_model;
use counterpoint::models::harness::HarnessConfig;
use counterpoint::models::Feature;
use counterpoint::mudd::{CounterSignature, CounterSpace};
use counterpoint::{FeatureSet, Inquiry, LatticeSearch, ModelCone, Observation};
use proptest::prelude::*;

const DIM: usize = 3;

/// A small additive random lattice over three counters.
fn cone(base: &[Vec<u32>], per_feature: &[Vec<u32>], set: &FeatureSet) -> ModelCone {
    let space = CounterSpace::new(&["c0", "c1", "c2"]);
    let mut sigs: Vec<Vec<u32>> = base.to_vec();
    for (i, sig) in per_feature.iter().enumerate() {
        if set.contains(&format!("f{i}")) {
            sigs.push(sig.clone());
        }
    }
    let counter_sigs: Vec<CounterSignature> = sigs
        .into_iter()
        .map(CounterSignature::from_counts)
        .collect();
    let n = counter_sigs.len();
    ModelCone::from_signatures("random", &space, counter_sigs, n)
}

/// Deterministic pseudo-random f64 in `[0, range)` from a seed and index.
fn pseudo(seed: u64, i: u64, range: f64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z ^= z >> 29;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 32;
    (z % 1_000_000) as f64 / 1_000_000.0 * range
}

fn observations(seed: u64) -> Vec<Observation> {
    (0..6u64)
        .map(|i| {
            let values: Vec<f64> = (0..DIM as u64)
                .map(|d| pseudo(seed, i * 16 + d, 20.0).floor())
                .collect();
            Observation::exact(&format!("p{i}"), &values)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serialized search graphs are byte-identical across thread counts and
    /// across repeated runs.
    #[test]
    fn search_graph_json_is_thread_invariant(
        base in proptest::collection::vec(proptest::collection::vec(0u32..4, DIM), 1..4),
        per_feature in proptest::collection::vec(proptest::collection::vec(0u32..4, DIM), 1..4),
        seed in 0u64..10_000,
    ) {
        let observations = observations(seed);
        let universe: Vec<String> = (0..per_feature.len()).map(|i| format!("f{i}")).collect();
        let generator = |set: &FeatureSet| cone(&base, &per_feature, set);
        let mut search = LatticeSearch::new(generator, &universe);
        let baseline = serde_json::to_string(&search.run(&FeatureSet::new(), &observations))
            .expect("graphs serialize");
        for threads in [1usize, 2, 8] {
            search.set_threads(threads);
            for repeat in 0..2 {
                let json = serde_json::to_string(&search.run(&FeatureSet::new(), &observations))
                    .expect("graphs serialize");
                prop_assert_eq!(
                    &json, &baseline,
                    "graph JSON moved at {} threads (repeat {})", threads, repeat
                );
            }
        }
    }
}

/// End-to-end: a campaign-backed `Inquiry` with a refinement stage renders
/// byte-identical report JSON for 1, 2 and 8 search threads and across
/// repeated runs with the same seed.
#[test]
fn inquiry_report_json_is_search_thread_invariant() {
    let feature_names: Vec<&str> = Feature::ALL.iter().map(|f| f.name()).collect();
    let run = |search_threads: usize| {
        let mut config = HarnessConfig::quick();
        config.accesses_per_workload = 20_000;
        Inquiry::new()
            .harness(config)
            .seed(42)
            .refine(
                |features: &FeatureSet| build_feature_model("candidate", features),
                &feature_names,
                FeatureSet::new(),
            )
            .search_threads(search_threads)
            .run()
            .expect("the simulated harness cannot fail")
            .to_json()
    };
    let baseline = run(1);
    assert_eq!(run(1), baseline, "repeated run with the same seed moved");
    for threads in [2usize, 8] {
        assert_eq!(run(threads), baseline, "search_threads = {threads}");
    }
}
