//! Tier-1 guard: the workspace itself must stay clean under
//! `counterpoint-lint`, with a non-empty, non-stale allowlist — the same
//! check `ci/lint.sh` runs, executed in-process so `cargo test` catches a
//! determinism or soundness hazard before CI does.

use counterpoint_lint::allowlist::Allowlist;
use counterpoint_lint::diag::render_report;
use counterpoint_lint::lint_tree;
use counterpoint_lint::rules::lint_source;
use std::path::Path;

fn repo_root() -> std::path::PathBuf {
    // The facade crate lives at crates/counterpoint.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

#[test]
fn workspace_is_lint_clean() {
    let root = repo_root();
    let allow = Allowlist::load(&root.join("ci/lint_allow.toml")).expect("allowlist parses");
    assert!(
        !allow.entries.is_empty(),
        "the checked-in allowlist documents the legitimate exemptions and must stay non-empty"
    );
    let outcome = lint_tree(&root, &allow).expect("walk the workspace");
    assert!(
        outcome.files_scanned >= 50,
        "walk looks truncated: only {} files scanned",
        outcome.files_scanned
    );
    assert!(
        outcome.is_clean(),
        "counterpoint-lint found problems:\n{}",
        render_report(&outcome, &allow.entries)
    );
    // Every allowlist entry earned its keep (no stale entries) and at least
    // one finding is suppressed, so the suppression machinery is exercised
    // on every tier-1 run.
    assert!(!outcome.suppressed.is_empty());
}

#[test]
fn injected_bad_patterns_are_caught() {
    // The known-bad fixture patterns must fire when injected into workspace
    // crates — the lint's reason for existing.  `lint_source` is exactly
    // what `lint_tree` runs per file, so this proves an edit introducing
    // the hazard cannot pass.
    let cases: [(&str, &str, &str); 5] = [
        (
            "D1",
            "crates/core/src/lattice.rs",
            "use std::collections::HashMap;\n",
        ),
        (
            "D2",
            "crates/collect/src/campaign.rs",
            "fn t() -> std::time::Instant { Instant::now() }\n",
        ),
        (
            "D3",
            "crates/lp/src/factor.rs",
            "fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        ),
        (
            "D4",
            "crates/core/src/lattice.rs",
            "fn s(xs: &[f64]) -> f64 { xs.iter().sum() }\n",
        ),
        (
            "D5",
            "crates/session/src/report.rs",
            "#[derive(Serialize)]\nstruct S { m: std::collections::HashMap<u8, u8> }\n",
        ),
    ];
    for (rule, path, snippet) in cases {
        let findings = lint_source(path, snippet);
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "injected {rule} pattern into {path} was not caught: {findings:?}"
        );
    }
}
