//! Differential test suite for the lattice-search engine: on random feature
//! lattices and observation sets, [`LatticeSearch`] must produce a
//! [`SearchGraph`] *equal* to the sequential cold-start reference
//! ([`reference_search`]) — same nodes in the same order, same edges, same
//! phases, same minimal feasible sets — at every thread count, including the
//! degenerate corners: empty feature universe, already-feasible initial
//! model, budget exhaustion mid-phase, degenerate (origin-only) cones and
//! non-monotone generators whose submodels are not cone-contained.

use counterpoint::mudd::{CounterSignature, CounterSpace};
use counterpoint::{
    feature_set, reference_search, FeatureSet, LatticeSearch, ModelCone, Observation, SearchGraph,
};
use proptest::prelude::*;

const DIM: usize = 3;

fn space() -> CounterSpace {
    CounterSpace::new(&["c0", "c1", "c2"])
}

/// A randomly generated feature lattice: base signatures plus per-feature
/// contributions.  When a feature's `drops_base` flag is set, including the
/// feature *removes* the corresponding base signature, which makes the
/// generator non-monotone: submodels are then not necessarily sub-cones, so
/// the engine's certificate-containment verification (rather than lattice
/// position) must carry the pruning soundness.
#[derive(Clone, Debug)]
struct RandomLattice {
    base: Vec<Vec<u32>>,
    /// One entry per feature: (signatures added, drop the base signature at
    /// index `i % base.len()` when present).
    features: Vec<(Vec<Vec<u32>>, bool)>,
}

impl RandomLattice {
    fn universe(&self) -> Vec<String> {
        (0..self.features.len()).map(|i| format!("f{i}")).collect()
    }

    fn cone(&self, set: &FeatureSet) -> ModelCone {
        let mut sigs: Vec<Vec<u32>> = self.base.clone();
        for (i, (added, drops_base)) in self.features.iter().enumerate() {
            if !set.contains(&format!("f{i}")) {
                continue;
            }
            if *drops_base && !self.base.is_empty() {
                let victim = &self.base[i % self.base.len()];
                sigs.retain(|s| s != victim);
            }
            sigs.extend(added.iter().cloned());
        }
        if sigs.is_empty() {
            sigs.push(vec![0; DIM]);
        }
        let counter_sigs: Vec<CounterSignature> = sigs
            .into_iter()
            .map(CounterSignature::from_counts)
            .collect();
        let n = counter_sigs.len();
        ModelCone::from_signatures("random", &space(), counter_sigs, n)
    }
}

fn signatures(max: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..4, DIM), 1..max)
}

fn lattices() -> impl Strategy<Value = RandomLattice> {
    (
        signatures(4),
        proptest::collection::vec((signatures(3), 0u32..2), 1..4),
    )
        .prop_map(|(base, features)| RandomLattice {
            base,
            features: features
                .into_iter()
                .map(|(added, drops)| (added, drops == 1))
                .collect(),
        })
}

/// Deterministic pseudo-random f64 in `[0, range)` from a seed and index.
fn pseudo(seed: u64, i: u64, range: f64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z ^= z >> 29;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 32;
    (z % 1_000_000) as f64 / 1_000_000.0 * range
}

/// A mixed observation set: exact points (shared coordinate axes — the warm
/// cache's best case) and noisy sampled regions (distinct principal axes).
fn observation_set(seed: u64, exact: usize, noisy: usize) -> Vec<Observation> {
    let mut observations = Vec::new();
    for i in 0..exact as u64 {
        let values: Vec<f64> = (0..DIM as u64)
            .map(|d| pseudo(seed, i * 16 + d, 24.0).floor())
            .collect();
        observations.push(Observation::exact(&format!("p{i}"), &values));
    }
    for i in 0..noisy as u64 {
        let base: Vec<f64> = (0..DIM as u64)
            .map(|d| pseudo(seed, 4096 + i * 64 + d, 40.0))
            .collect();
        let samples: Vec<Vec<f64>> = (0..10u64)
            .map(|s| {
                base.iter()
                    .enumerate()
                    .map(|(d, b)| b + pseudo(seed, i * 64 + 8 + s * 4 + d as u64, 3.0) - 1.5)
                    .collect()
            })
            .collect();
        observations.push(Observation::from_samples(&format!("n{i}"), &samples, 0.99));
    }
    observations
}

/// Runs the reference and the engine (at several thread counts) on one input
/// and asserts graph equality.
fn assert_equivalent(
    lattice: &RandomLattice,
    max_models: usize,
    initial: &FeatureSet,
    observations: &[Observation],
) -> SearchGraph {
    let universe = lattice.universe();
    let generator = |set: &FeatureSet| lattice.cone(set);
    let expected = reference_search(&generator, &universe, max_models, initial, observations);
    let mut search = LatticeSearch::new(generator, &universe);
    search.set_max_models(max_models);
    for threads in [1usize, 2, 4] {
        search.set_threads(threads);
        let graph = search.run(initial, observations);
        assert_eq!(
            graph, expected,
            "graph diverged from the sequential reference at {threads} threads"
        );
    }
    expected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The headline differential property: random lattice, random
    /// observations, empty initial model.
    #[test]
    fn lattice_search_equals_reference_from_empty(
        lattice in lattices(),
        seed in 0u64..10_000,
    ) {
        let observations = observation_set(seed, 5, 2);
        assert_equivalent(&lattice, 256, &FeatureSet::new(), &observations);
    }

    /// Starting from the full feature set exercises the elimination recursion
    /// (and its certificate-pruned descent) hardest.
    #[test]
    fn lattice_search_equals_reference_from_full_set(
        lattice in lattices(),
        seed in 0u64..10_000,
    ) {
        let observations = observation_set(seed, 4, 2);
        let initial: FeatureSet = lattice.universe().into_iter().collect();
        assert_equivalent(&lattice, 256, &initial, &observations);
    }

    /// Tiny model budgets cut both phases mid-flight; the engine must stop at
    /// exactly the same step as the reference.
    #[test]
    fn budget_exhaustion_matches_mid_phase(
        lattice in lattices(),
        seed in 0u64..10_000,
        budget in 1usize..6,
    ) {
        let observations = observation_set(seed, 4, 1);
        let graph = assert_equivalent(&lattice, budget, &FeatureSet::new(), &observations);
        prop_assert!(graph.steps.len() <= budget);
        let initial: FeatureSet = lattice.universe().into_iter().collect();
        assert_equivalent(&lattice, budget, &initial, &observations);
    }
}

#[test]
fn empty_feature_universe_records_only_the_initial_model() {
    let lattice = RandomLattice {
        base: vec![vec![1, 0, 0], vec![1, 1, 0]],
        features: Vec::new(),
    };
    let observations = observation_set(7, 4, 1);
    let graph = assert_equivalent(&lattice, 256, &FeatureSet::new(), &observations);
    assert!(graph.edges.is_empty());
    // Elimination of the empty set has no children: if the initial model is
    // feasible it is itself minimal.
    if graph.steps[0].feasible {
        assert_eq!(graph.minimal_feasible, vec![Vec::<String>::new()]);
    } else {
        assert!(graph.minimal_feasible.is_empty());
    }
}

#[test]
fn already_feasible_initial_model_goes_straight_to_elimination() {
    // A base model rich enough to explain everything (the unit vectors span
    // the whole octant): discovery is a no-op and the whole graph is the
    // elimination tree.
    let lattice = RandomLattice {
        base: vec![vec![1, 0, 0], vec![0, 1, 0], vec![0, 0, 1]],
        features: vec![(vec![vec![1, 1, 0]], false), (vec![vec![0, 1, 1]], false)],
    };
    let observations = observation_set(3, 5, 1);
    let initial = feature_set(&["f0", "f1"]);
    let graph = assert_equivalent(&lattice, 256, &initial, &observations);
    assert!(graph.steps[0].feasible);
    assert!(graph
        .edges
        .iter()
        .all(|e| e.phase == counterpoint::core::explore::SearchPhase::Elimination));
}

#[test]
fn degenerate_origin_only_cones_are_handled() {
    // Every signature zero: the cone accepts only the origin, so any non-zero
    // observation refutes every model.  (The lattice still has features; they
    // all map to the same degenerate cone.)
    let lattice = RandomLattice {
        base: vec![vec![0, 0, 0]],
        features: vec![(vec![vec![0, 0, 0]], false)],
    };
    let observations = vec![
        Observation::exact("origin", &[0.0, 0.0, 0.0]),
        Observation::exact("off", &[1.0, 0.0, 2.0]),
    ];
    let graph = assert_equivalent(&lattice, 256, &FeatureSet::new(), &observations);
    assert!(!graph.steps[0].feasible);
}

#[test]
fn empty_observation_set_makes_everything_feasible() {
    let lattice = RandomLattice {
        base: vec![vec![1, 0, 0]],
        features: vec![(vec![vec![1, 1, 0]], false), (vec![vec![0, 1, 1]], false)],
    };
    let graph = assert_equivalent(&lattice, 256, &feature_set(&["f0", "f1"]), &[]);
    assert!(graph.steps.iter().all(|s| s.feasible));
    // With no refuting data the elimination reaches the empty feature set and
    // reports it minimal (the legacy traversal may report already-visited
    // subtrees as minimal too; equality with the reference covers those).
    assert!(graph.minimal_feasible.contains(&Vec::<String>::new()));
}

/// Satellite regression: the deprecated free `essential_features` and the
/// unified `SearchGraph::essential_features` must agree (they share one
/// implementation now; this pins the behavioural parity, `None`-vs-empty
/// included).
#[test]
#[allow(deprecated)]
fn essential_features_parity_between_free_function_and_method() {
    let lattice = RandomLattice {
        base: vec![vec![1, 0, 0]],
        features: vec![(vec![vec![1, 1, 0]], false), (vec![vec![0, 1, 1]], false)],
    };
    for seed in [1u64, 5, 9, 13] {
        let observations = observation_set(seed, 5, 1);
        let universe = lattice.universe();
        let generator = |set: &FeatureSet| lattice.cone(set);
        let graph = LatticeSearch::new(generator, &universe).run(&FeatureSet::new(), &observations);

        // Rebuild the explored models as a `ModelEvaluation` set and run the
        // deprecated free function over it.
        let evaluations: Vec<counterpoint::ModelEvaluation> = graph
            .steps
            .iter()
            .enumerate()
            .map(|(i, step)| counterpoint::ModelEvaluation {
                name: format!("step{i}"),
                features: step.features.clone(),
                infeasible_count: step.infeasible_count,
                infeasible_observations: Vec::new(),
                total_observations: observations.len(),
                feasible: step.feasible,
            })
            .collect();
        let from_free = counterpoint::essential_features(&evaluations);
        let from_method = graph.essential_features();
        match from_free {
            Some(features) => assert_eq!(features, from_method, "seed {seed}"),
            None => assert!(
                from_method.is_empty(),
                "no feasible model: the method must return an empty set (seed {seed})"
            ),
        }
    }
}
