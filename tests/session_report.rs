//! Property tests for the session layer: on random cones and observation
//! batches, an [`Inquiry`]'s [`Report`] must serialize to JSON that round-trips
//! bit-exactly through the vendored serde stack (mirroring
//! `collect_roundtrip.rs` for traces), stay byte-identical for every worker
//! thread count, and carry sound evidence — every `Refuted` verdict's Farkas
//! certificate must actually separate the cone from the observation.

use counterpoint::models::harness::{case_study_campaign, HarnessConfig};
use counterpoint::mudd::{CounterSignature, CounterSpace};
use counterpoint::{
    ExplorationModel, FeatureSet, Inquiry, ModelCone, Observation, Report, Verdict,
};
use proptest::prelude::*;

fn space(dim: usize) -> CounterSpace {
    let names: Vec<String> = (0..dim).map(|i| format!("c{i}")).collect();
    CounterSpace::new(&names)
}

/// Strategy: a set of counter signatures over `dim` counters (all-zero
/// signatures included, so some cones are degenerate).
fn signatures(dim: usize, max_sigs: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..4, dim), 1..max_sigs)
}

fn cone_from(name: &str, sigs: &[Vec<u32>], dim: usize) -> ModelCone {
    let counter_sigs: Vec<CounterSignature> = sigs
        .iter()
        .map(|s| CounterSignature::from_counts(s.clone()))
        .collect();
    let n = counter_sigs.len();
    ModelCone::from_signatures(name, &space(dim), counter_sigs, n)
}

/// Deterministic pseudo-random f64 in `[0, range)` from a seed and index.
fn pseudo(seed: u64, i: u64, range: f64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z ^= z >> 29;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 32;
    (z % 1_000_000) as f64 / 1_000_000.0 * range
}

/// A mixed (noisy + exact) observation batch over `dim` counters.
fn observation_batch(seed: u64, dim: usize, count: u64) -> Vec<Observation> {
    (0..count)
        .map(|i| {
            let base: Vec<f64> = (0..dim as u64)
                .map(|d| pseudo(seed, i * 64 + d, 40.0))
                .collect();
            if i % 2 == 0 {
                Observation::exact(&format!("e{i}"), &base)
            } else {
                let samples: Vec<Vec<f64>> = (0..10u64)
                    .map(|s| {
                        base.iter()
                            .enumerate()
                            .map(|(d, b)| b + pseudo(seed, i * 64 + 8 + s * 4 + d as u64, 3.0))
                            .collect()
                    })
                    .collect();
                Observation::from_samples(&format!("n{i}"), &samples, 0.99)
            }
        })
        .collect()
}

fn inquiry(sigs_a: &[Vec<u32>], sigs_b: &[Vec<u32>], seed: u64, dim: usize) -> Inquiry {
    Inquiry::new()
        .observations(observation_batch(seed, dim, 6))
        .models(vec![
            ExplorationModel::new("a", FeatureSet::new(), cone_from("a", sigs_a, dim)),
            ExplorationModel::new("b", FeatureSet::new(), cone_from("b", sigs_b, dim)),
        ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `Report` JSON round-trips bit-exactly through the vendored serde_json:
    /// serialize → parse → serialize reproduces the same bytes, and the parsed
    /// report is structurally identical (timing excluded by construction).
    #[test]
    fn report_json_round_trips_bit_exactly(
        sigs_a in signatures(3, 5),
        sigs_b in signatures(3, 5),
        seed in 0u64..10_000,
    ) {
        let report = inquiry(&sigs_a, &sigs_b, seed, 3).run().unwrap();
        let json = report.to_json();
        let parsed = Report::from_json(&json).expect("report JSON must parse");
        prop_assert_eq!(parsed.to_json(), json, "round trip must be byte-exact");
        prop_assert_eq!(parsed.models, report.models);
        prop_assert_eq!(parsed.observations, report.observations);
        prop_assert_eq!(parsed.essential_features, report.essential_features);
    }

    /// The same inquiry produces a byte-identical report for every worker
    /// thread count (0 = available parallelism).
    #[test]
    fn reports_are_byte_identical_across_thread_counts(
        sigs_a in signatures(3, 5),
        sigs_b in signatures(3, 5),
        seed in 0u64..10_000,
    ) {
        let baseline = inquiry(&sigs_a, &sigs_b, seed, 3).run().unwrap().to_json();
        for threads in [0usize, 2, 4, 8] {
            let report = inquiry(&sigs_a, &sigs_b, seed, 3)
                .threads(threads)
                .run()
                .unwrap();
            prop_assert_eq!(report.to_json(), baseline.clone(), "threads = {}", threads);
        }
    }

    /// Evidence soundness: every `Refuted` verdict's certificate separates the
    /// cone (non-negative on every generator, strictly negative on the
    /// observation region), and every `Feasible` witness projects into the
    /// observation's bounding box.
    #[test]
    fn verdict_evidence_is_checkable(
        sigs in signatures(3, 5),
        seed in 0u64..10_000,
    ) {
        let dim = 3;
        let cone = cone_from("m", &sigs, dim);
        let observations = observation_batch(seed, dim, 6);
        let report = Inquiry::new()
            .observations(observations.clone())
            .model("m", cone.clone())
            .run()
            .unwrap();
        let row = report.model("m").unwrap();
        for (verdict, observation) in row.verdicts.iter().zip(&observations) {
            match verdict {
                Verdict::Refuted { .. } => {
                    if let Some(certificate) = verdict.farkas_certificate() {
                        for g in cone.generator_cone().generators() {
                            let gv = g.to_f64_vec();
                            let proj: f64 =
                                certificate.iter().zip(&gv).map(|(c, v)| c * v).sum();
                            prop_assert!(
                                proj >= -1e-6,
                                "certificate cuts off generator {:?}",
                                gv
                            );
                        }
                        let (_, hi) = observation.region().interval_along(certificate);
                        prop_assert!(
                            hi < 1e-6,
                            "certificate must put the region on the negative side"
                        );
                    }
                }
                Verdict::Feasible { .. } => {
                    if let Some(witness) = verdict.witness() {
                        let region = observation.region();
                        let scale = region
                            .center()
                            .iter()
                            .fold(1.0f64, |acc, v| acc.max(v.abs()));
                        for (axis, &width) in
                            region.axes().iter().zip(region.half_widths())
                        {
                            let proj: f64 =
                                axis.iter().zip(witness).map(|(a, w)| a * w).sum();
                            let center: f64 = axis
                                .iter()
                                .zip(region.center())
                                .map(|(a, c)| a * c)
                                .sum();
                            prop_assert!(
                                (proj - center).abs() <= width + 1e-6 * scale,
                                "witness must project inside the region box"
                            );
                        }
                    }
                }
                Verdict::Inconclusive { .. } => {
                    prop_assert!(false, "no inquiry in this suite may be inconclusive");
                }
            }
        }
    }
}

/// A small end-to-end session over the real simulated campaign: the report is
/// thread-invariant byte for byte, round-trips, and survives a disk trip.
#[test]
fn campaign_backed_report_is_deterministic_and_round_trips() {
    let mut config = HarnessConfig::quick();
    config.accesses_per_workload = 4_000;
    let make = |threads: usize| {
        let models: Vec<ExplorationModel> = ["m0", "m4"]
            .iter()
            .map(|name| {
                let specs = counterpoint::models::family::feature_sets_table3();
                let (_, features) = specs.into_iter().find(|(n, _)| n == name).unwrap();
                ExplorationModel::new(
                    name,
                    features.clone(),
                    counterpoint::models::family::build_feature_model(name, &features),
                )
            })
            .collect();
        Inquiry::new()
            .sim_campaign(
                case_study_campaign(&config),
                config.mmu.clone(),
                config.pmu.clone(),
            )
            .threads(threads)
            .models(models)
            .run()
            .expect("the simulated campaign cannot fail")
    };
    let baseline = make(1);
    let json = baseline.to_json();
    for threads in [0usize, 4] {
        assert_eq!(make(threads).to_json(), json, "threads = {threads}");
    }
    // Disk round trip through the session error path.
    let path = std::env::temp_dir().join("counterpoint_session_campaign_report.json");
    baseline.save(&path).expect("report must save");
    let loaded = Report::load(&path).expect("report must load");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.to_json(), json);
    // The featureless model is refuted with certificates; the feature-complete
    // model explains everything.
    let m0 = baseline.model("m0").expect("m0 was tested");
    assert!(m0.infeasible_count > 0);
    assert!(m0
        .verdicts
        .iter()
        .filter(|v| v.is_refuted())
        .all(|v| v.farkas_certificate().is_some()));
    assert!(baseline.model("m4").expect("m4 was tested").feasible);
}
