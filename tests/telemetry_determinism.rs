//! Telemetry must be a pure observer: report JSON is byte-identical with the
//! sink on or off at any thread count, metrics snapshots of deterministic
//! workloads are byte-identical across runs and thread counts, and the
//! schedule-oversubscription counters are pinned to exact values.
//!
//! The telemetry sink is process-global and cargo runs the tests of one
//! binary on concurrent threads, so every test here claims [`SINK_OWNER`]
//! first: no other test's instrumentation can leak into a recording, which is
//! what makes exact counter assertions sound.

use counterpoint::collect::NOISE_INFLATION_WARN_THRESHOLD;
use counterpoint::mudd::{CounterSignature, CounterSpace};
use counterpoint::telemetry::{Metric, Recording};
use counterpoint::{EventSchedule, FeatureSet, Inquiry, ModelCone, Observation};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

static SINK_OWNER: Mutex<()> = Mutex::new(());

fn claim_sink() -> MutexGuard<'static, ()> {
    SINK_OWNER.lock().unwrap_or_else(|e| e.into_inner())
}

fn space(dim: usize) -> CounterSpace {
    let names: Vec<String> = (0..dim).map(|i| format!("c{i}")).collect();
    CounterSpace::new(&names)
}

/// A model family + observation set from raw signature/point data, so the
/// proptest below can sweep arbitrary small inquiries.
fn build_inquiry(model_sigs: &[Vec<Vec<u32>>], points: &[Vec<u32>]) -> Inquiry {
    let dim = points[0].len();
    let space = space(dim);
    let mut inquiry = Inquiry::new().observations(
        points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let values: Vec<f64> = p.iter().map(|&x| x as f64).collect();
                Observation::exact(&format!("obs{i}"), &values)
            })
            .collect::<Vec<_>>(),
    );
    for (m, sigs) in model_sigs.iter().enumerate() {
        let counter_sigs: Vec<CounterSignature> = sigs
            .iter()
            .map(|s| CounterSignature::from_counts(s.clone()))
            .collect();
        let n = counter_sigs.len();
        let name = format!("m{m}");
        inquiry = inquiry.model(
            &name,
            ModelCone::from_signatures(&name, &space, counter_sigs, n),
        );
    }
    inquiry
}

/// The toy feature lattice of the session tests, for refinement coverage.
fn toy_cone(features: &FeatureSet) -> ModelCone {
    let space = space(2);
    let mut sigs = vec![CounterSignature::from_counts(vec![1, 0])];
    if features.contains("Fy") {
        sigs.push(CounterSignature::from_counts(vec![1, 1]));
    }
    if features.contains("Fboth") {
        sigs.push(CounterSignature::from_counts(vec![0, 1]));
    }
    let n = sigs.len();
    ModelCone::from_signatures("toy", &space, sigs, n)
}

fn refinement_inquiry() -> Inquiry {
    Inquiry::new()
        .observations(vec![
            Observation::exact("x-only", &[10.0, 0.0]),
            Observation::exact("balanced", &[10.0, 6.0]),
        ])
        .model("base", toy_cone(&FeatureSet::new()))
        .refine(toy_cone, &["Fy", "Fboth"], FeatureSet::new())
}

/// A fixed multi-model inquiry whose sweep exercises certificate prunes,
/// witness-ray settlements and the coefficient cache.
fn fixed_inquiry() -> Inquiry {
    let models = vec![
        vec![vec![1, 0, 0], vec![1, 1, 0], vec![1, 1, 1]],
        vec![vec![2, 1, 0], vec![0, 1, 1]],
        vec![vec![1, 0, 1]],
    ];
    let points = vec![
        vec![4, 2, 3],
        vec![10, 0, 0],
        vec![3, 3, 3],
        vec![0, 5, 1],
        vec![7, 7, 0],
        vec![1, 1, 1],
    ];
    build_inquiry(&models, &points)
}

#[test]
fn oversubscribed_schedule_pins_the_telemetry_counters() {
    let _own = claim_sink();
    let recording = Recording::start();
    let events: Vec<String> = (0..26).map(|i| format!("ev{i}")).collect();
    let schedule = EventSchedule::plan(events, 4);
    let snapshot = recording.finish();
    // 26 events on 4 counters: 7 rounds, 22 events beyond the simultaneous
    // budget, and √7 ≈ 2.65 crosses the noise-inflation warning threshold.
    assert!(schedule.inflation_factor() > NOISE_INFLATION_WARN_THRESHOLD);
    assert_eq!(snapshot.counter(Metric::ScheduleRounds), 7);
    assert_eq!(snapshot.counter(Metric::ScheduleOversubscribedEvents), 22);
    assert_eq!(snapshot.counter(Metric::ScheduleInflationWarnings), 1);
    let kinds: Vec<&str> = snapshot.warnings.iter().map(|w| w.kind).collect();
    assert_eq!(
        kinds,
        vec!["schedule_noise_inflation", "schedule_oversubscribed"],
        "both structured warnings must be recorded (sorted by kind)"
    );
    assert!(snapshot.warnings.iter().all(|w| w.count == 1));
    assert!(snapshot.warnings[1].message.contains("22"));
}

#[test]
fn fitting_schedule_records_no_warnings() {
    let _own = claim_sink();
    let recording = Recording::start();
    let _ = EventSchedule::plan((0..4).map(|i| format!("ev{i}")).collect(), 4);
    let snapshot = recording.finish();
    assert_eq!(snapshot.counter(Metric::ScheduleRounds), 1);
    assert_eq!(snapshot.counter(Metric::ScheduleOversubscribedEvents), 0);
    assert_eq!(snapshot.counter(Metric::ScheduleInflationWarnings), 0);
    assert!(snapshot.warnings.is_empty());
}

#[test]
fn metrics_snapshots_are_identical_across_runs_and_thread_counts() {
    let _own = claim_sink();
    // The verdict-matrix sweep processes each model on exactly one worker and
    // all metrics are commutative atomic sums, so the snapshot of this
    // refinement-free inquiry is byte-identical at every thread count.
    let snapshot = |threads: usize| {
        let report = fixed_inquiry()
            .threads(threads)
            .telemetry(true)
            .run()
            .unwrap();
        report
            .telemetry
            .expect("this run owns the sink")
            .metrics_json()
    };
    let baseline = snapshot(1);
    assert!(baseline.contains("\"lp_solves\""));
    for threads in [1, 2, 8] {
        assert_eq!(snapshot(threads), baseline, "threads = {threads}");
    }
}

#[test]
fn refinement_reports_are_byte_identical_with_and_without_telemetry() {
    let _own = claim_sink();
    let baseline = refinement_inquiry().run().unwrap().to_json();
    for threads in [1, 2, 8] {
        for telemetry_on in [false, true] {
            let report = refinement_inquiry()
                .threads(threads)
                .search_threads(threads)
                .telemetry(telemetry_on)
                .run()
                .unwrap();
            assert_eq!(
                report.to_json(),
                baseline,
                "threads = {threads}, telemetry = {telemetry_on}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Report JSON is byte-identical with telemetry on or off, at 1, 2 and 8
    /// worker threads, for arbitrary small model families and observations.
    #[test]
    fn reports_are_byte_identical_across_telemetry_and_threads(
        model_sigs in proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(0u32..4, 3), 1..4),
            1..4,
        ),
        points in proptest::collection::vec(proptest::collection::vec(0u32..40, 3), 1..4),
    ) {
        let _own = claim_sink();
        let baseline = build_inquiry(&model_sigs, &points).run().unwrap().to_json();
        for threads in [1usize, 2, 8] {
            for telemetry_on in [false, true] {
                let report = build_inquiry(&model_sigs, &points)
                    .threads(threads)
                    .telemetry(telemetry_on)
                    .run()
                    .unwrap();
                prop_assert_eq!(
                    report.to_json(),
                    baseline.clone(),
                    "threads = {}, telemetry = {}",
                    threads,
                    telemetry_on
                );
            }
        }
    }

    /// Metrics snapshots of the same seeded inquiry are byte-identical run to
    /// run (refinement-free sweep; see the fixed test for thread counts).
    #[test]
    fn metrics_snapshots_are_reproducible(
        points in proptest::collection::vec(proptest::collection::vec(0u32..40, 3), 1..4),
    ) {
        let _own = claim_sink();
        let model_sigs = vec![vec![vec![1, 0, 0], vec![1, 1, 0], vec![1, 1, 1]]];
        let run = || {
            let report = build_inquiry(&model_sigs, &points).telemetry(true).run().unwrap();
            report.telemetry.expect("this run owns the sink").metrics_json()
        };
        prop_assert_eq!(run(), run());
    }
}
