//! Offline stand-in for the `criterion` crate.
//!
//! Benches declared with [`criterion_group!`] / [`criterion_main!`] compile and
//! run under `cargo bench` with `harness = false`, measuring wall-clock time
//! with adaptive iteration counts and printing a mean per iteration. There is
//! no statistical analysis, HTML report or regression store — the goal is that
//! `cargo bench` works hermetically and reports stable, comparable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&id.to_string(), self.sample_size, None, &mut f);
        self
    }
}

/// A group of related benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares how much work one iteration performs, enabling rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Benchmarks a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An ID made of a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An ID carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Iteration work declared per benchmark, used to report rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times the body passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `body` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Calibrate the per-sample iteration count so one sample takes ≥ ~2 ms
    // (bounded to keep total bench time reasonable).
    let mut calibration = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calibration);
    let per_iter = calibration.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(2).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per = bencher.elapsed / iters as u32;
        best = best.min(per);
        total += per;
    }
    let mean = total / samples as u32;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.1} Melem/s)", n as f64 / mean.as_secs_f64() / 1e6),
        Throughput::Bytes(n) => format!(
            " ({:.1} MiB/s)",
            n as f64 / mean.as_secs_f64() / (1 << 20) as f64
        ),
    });
    println!(
        "bench {label}: mean {mean:?}, best {best:?} over {samples} samples × {iters} iters{}",
        rate.unwrap_or_default()
    );
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        #[doc = "Runs this group's benchmark targets (generated by `criterion_group!`)."]
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run_and_format() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
