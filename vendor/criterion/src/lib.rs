//! Offline stand-in for the `criterion` crate.
//!
//! Benches declared with [`criterion_group!`] / [`criterion_main!`] compile and
//! run under `cargo bench` with `harness = false`, measuring wall-clock time
//! with adaptive iteration counts and printing a mean and median per
//! iteration.  There is no statistical analysis or HTML report, but the
//! regression-store corner of the real crate's CLI is supported: running with
//! `--save-baseline <name>` (the flag CI passes) writes every benchmark's
//! median, in nanoseconds, to `target/criterion/<name>/<bench-binary>.json` as
//! a flat `{"benchmark name": median_ns}` object.  The `bench_gate` tool (see
//! `ci/bench_gate.sh`) merges those per-binary files and compares them against
//! the repository's checked-in baseline.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Results recorded by every benchmark of this process: `(label, median_ns)`.
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// The cargo target directory.  Bench binaries run with the *package* root as
/// their working directory, so a bare relative `target/` would land inside the
/// crate; honour `CARGO_TARGET_DIR` and otherwise walk up to the workspace
/// root (the ancestor holding `Cargo.lock`).
fn target_dir() -> std::path::PathBuf {
    if let Ok(t) = std::env::var("CARGO_TARGET_DIR") {
        return std::path::PathBuf::from(t);
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("target");
        }
        if !dir.pop() {
            return std::path::PathBuf::from("target");
        }
    }
}

/// Writes the recorded medians to
/// `target/criterion/<name>/<bench-binary>.json` if `--save-baseline <name>`
/// was passed on the command line.  Called by [`criterion_main!`] after all
/// groups have run; harmless (and silent) when the flag is absent.
#[doc(hidden)]
pub fn save_baseline_if_requested() {
    let mut args = std::env::args();
    let binary = args.next().unwrap_or_else(|| "bench".to_string());
    let mut name = None;
    while let Some(arg) = args.next() {
        if arg == "--save-baseline" {
            name = args.next();
            break;
        }
        if let Some(value) = arg.strip_prefix("--save-baseline=") {
            name = Some(value.to_string());
            break;
        }
    }
    let Some(name) = name else { return };

    // `<stem>-<16 hex digits>` → `<stem>`: cargo decorates bench binaries with
    // a metadata hash that would otherwise leak into the file name.
    let stem = std::path::Path::new(&binary)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    let stem = match stem.rsplit_once('-') {
        Some((head, tail)) if tail.len() == 16 && tail.bytes().all(|b| b.is_ascii_hexdigit()) => {
            head.to_string()
        }
        _ => stem,
    };

    let dir = target_dir().join("criterion").join(&name);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("criterion: cannot create {}: {e}", dir.display());
        return;
    }
    let results = RESULTS.lock().expect("criterion results poisoned");
    let mut body = String::from("{\n");
    for (i, (label, median)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        body.push_str(&format!("  \"{label}\": {median:.1}{comma}\n"));
    }
    body.push_str("}\n");
    let path = dir.join(format!("{stem}.json"));
    match std::fs::write(&path, body) {
        Ok(()) => println!("saved baseline `{name}` to {}", path.display()),
        Err(e) => eprintln!("criterion: cannot write {}: {e}", path.display()),
    }
}

/// The benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&id.to_string(), self.sample_size, None, &mut f);
        self
    }
}

/// A group of related benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares how much work one iteration performs, enabling rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Benchmarks a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An ID made of a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An ID carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Iteration work declared per benchmark, used to report rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times the body passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `body` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Calibrate the per-sample iteration count so one sample takes ≥ ~2 ms
    // (bounded to keep total bench time reasonable).
    let mut calibration = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calibration);
    let per_iter = calibration.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(2).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut per_sample = Vec::with_capacity(samples);
    let mut per_sample_ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per = bencher.elapsed / iters as u32;
        best = best.min(per);
        total += per;
        per_sample.push(per);
        // Fractional per-iteration time: `Duration` division floors to whole
        // nanoseconds, which collapses sub-ns workloads (and sub-ns precision
        // on fast ones) to zero in the recorded baseline.
        per_sample_ns.push(bencher.elapsed.as_secs_f64() * 1e9 / iters as f64);
    }
    let mean = total / samples as u32;
    per_sample.sort_unstable();
    let median = per_sample[per_sample.len() / 2];
    per_sample_ns.sort_unstable_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let median_ns = per_sample_ns[per_sample_ns.len() / 2];
    RESULTS
        .lock()
        .expect("criterion results poisoned")
        .push((label.to_string(), median_ns));
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.1} Melem/s)", n as f64 / mean.as_secs_f64() / 1e6),
        Throughput::Bytes(n) => format!(
            " ({:.1} MiB/s)",
            n as f64 / mean.as_secs_f64() / (1 << 20) as f64
        ),
    });
    println!(
        "bench {label}: median {median:?}, mean {mean:?}, best {best:?} over {samples} samples × {iters} iters{}",
        rate.unwrap_or_default()
    );
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        #[doc = "Runs this group's benchmark targets (generated by `criterion_group!`)."]
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`]s, then writing the
/// medians JSON if `--save-baseline <name>` was requested.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::save_baseline_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run_and_format() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        group.throughput(Throughput::Elements(100));
        // Black-box the loop bounds so optimized builds cannot const-fold the
        // workload to a sub-nanosecond constant (the medians must stay > 0).
        group.bench_function("sum", |b| b.iter(|| (0..black_box(100u64)).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..black_box(n)).sum::<u64>())
        });
        group.finish();
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
        // Medians are recorded for the baseline store.
        let results = RESULTS.lock().unwrap();
        assert!(results.iter().any(|(label, _)| label == "demo/sum"));
        assert!(results.iter().all(|(_, median)| *median > 0.0));
    }
}
