//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification for [`vec()`](fn@vec): an exact size, `lo..hi` or `lo..=hi`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (min, max) = r.into_inner();
        assert!(min <= max, "empty size range");
        SizeRange { min, max }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`](fn@vec).
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.min == self.size.max {
            self.size.min
        } else {
            rng.gen_range(self.size.min..=self.size.max)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
