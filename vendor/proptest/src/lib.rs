//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property suites use: the
//! [`proptest!`] macro, `prop_assert*` / [`prop_assume!`], [`Strategy`] with
//! `prop_map`, numeric range strategies, tuple strategies and
//! [`collection::vec`]. Inputs are drawn from a deterministic RNG seeded from
//! the test name, so failures are reproducible run-to-run; unlike real
//! proptest there is no shrinking — the failing case is reported as generated.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Commonly used items, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// The RNG driving input generation.
pub type TestRng = StdRng;

/// Per-suite configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases each test must pass.
    pub cases: u32,
    /// Maximum rejected cases (`prop_assume!`) before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and is not counted.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (from `prop_assume!`).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// A failure (from `prop_assert!` and friends).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

/// Derives the deterministic per-test RNG seed from the test's name.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a, good enough to decorrelate sibling tests.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Runs `cases` successful executions of `case`, skipping rejected inputs.
///
/// This is the engine behind the [`proptest!`] macro; `case` receives the RNG
/// and returns `Ok(())`, a rejection, or a failure.
///
/// # Panics
///
/// Panics when a case fails or when rejections exceed the configured budget.
pub fn run_property_test(
    test_name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::seed_from_u64(seed_for(test_name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u64;
    while passed < config.cases {
        case_index += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "{test_name}: too many prop_assume! rejections ({rejected}) \
                     after {passed} passing cases"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: property failed at case #{case_index}: {msg}");
            }
        }
    }
}

/// Declares property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property_test(stringify!($name), &config, |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                $body
                Ok(())
            });
        }
    )*};
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                left,
                right
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_are_honoured(x in -50i128..=50, y in 1u32..7, z in 0.25f64..0.75) {
            prop_assert!((-50..=50).contains(&x));
            prop_assert!((1..7).contains(&y));
            prop_assert!((0.25..0.75).contains(&z));
        }

        #[test]
        fn tuples_and_map_compose(pair in (0u64..10, 0u64..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 19);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0i64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn collections_respect_size_bounds(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_context() {
        crate::run_property_test("always_fails", &ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
