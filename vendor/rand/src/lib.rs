//! Offline stand-in for the `rand` crate.
//!
//! Provides the exact API surface this workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool` — backed by xoshiro256++ seeded through
//! SplitMix64. The generator is deterministic for a given seed, which the PMU
//! multiplexing model and the workload generators rely on.
//!
//! Numerical note: `gen_range` maps `next_u64` into the span by modulo, whose
//! bias is ≤ span/2⁶⁴ — irrelevant for simulation workloads.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values that can be sampled uniformly from the type's natural distribution
/// (unit interval for floats, full range for integers).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that can be drawn uniformly from a bounded range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws a uniform value from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if inclusive {
                    assert!(low <= high, "cannot sample empty range");
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (low as $wide).wrapping_add((rng.next_u64() % (span + 1)) as $wide) as $t
                } else {
                    assert!(low < high, "cannot sample empty range");
                    (low as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64
);

macro_rules! impl_sample_uniform_int128 {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (high as u128).wrapping_sub(low as u128);
                let word = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                if inclusive {
                    assert!(low <= high, "cannot sample empty range");
                    if span == u128::MAX {
                        return word as $t;
                    }
                    (low as u128).wrapping_add(word % (span + 1)) as $t
                } else {
                    assert!(low < high, "cannot sample empty range");
                    (low as u128).wrapping_add(word % span) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_int128!(i128, u128);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, inclusive: bool, rng: &mut R) -> Self {
                if inclusive {
                    assert!(low <= high, "cannot sample empty range");
                } else {
                    assert!(low < high, "cannot sample empty range");
                }
                let unit = <$t as Standard>::sample(rng);
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges a uniform value can be drawn from (`low..high` and `low..=high`).
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_range(low, high, true, rng)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the type's natural distribution (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut s = seed;
            let mut next = || {
                s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.gen_range(3u64..17);
            assert!((3..17).contains(&n));
            let m = rng.gen_range(2usize..=3);
            assert!(m == 2 || m == 3);
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (20_000..30_000).contains(&hits),
            "p=0.25 gave {hits}/100000"
        );
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut min: f64 = 1.0;
        let mut max: f64 = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            min = min.min(u);
            max = max.max(u);
        }
        assert!(min < 0.01 && max > 0.99);
    }
}
