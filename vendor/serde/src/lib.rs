//! Offline stand-in for the `serde` crate.
//!
//! The real `serde` models serialization through a visitor-style `Serializer`
//! trait; this workspace only ever serializes plain data structures to JSON, so
//! the stand-in collapses the design to a single question — "what is your JSON
//! value?" — answered by [`Serialize::to_value`]. The derive macro (re-exported
//! from `serde_derive`) generates that answer field-by-field for structs and
//! variant-by-name for enums, honouring `#[serde(skip)]`.
//!
//! Only the API surface this workspace uses is provided.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::Serialize;

/// A JSON-like value: the universal serialization target of this stand-in.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Integers (kept exact; rendered without a decimal point).
    Int(i128),
    /// Floating-point numbers.
    Float(f64),
    /// JSON strings.
    String(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` into the JSON-like value model.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::Int(i128::try_from(*self).unwrap_or(i128::MAX))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )+};
}

impl_serialize_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));
