//! Offline stand-in for the `serde` crate.
//!
//! The real `serde` models serialization through a visitor-style `Serializer`
//! trait; this workspace only ever serializes plain data structures to JSON, so
//! the stand-in collapses the design to a single question — "what is your JSON
//! value?" — answered by [`Serialize::to_value`]. The derive macro (re-exported
//! from `serde_derive`) generates that answer field-by-field for structs and
//! variant-by-name for enums, honouring `#[serde(skip)]`.
//!
//! Deserialization mirrors the same collapse: [`Deserialize::from_value`]
//! rebuilds a value from the [`Value`] model, and `serde_json`'s `from_str`
//! parses JSON text into a [`Value`] first. The `#[derive(Deserialize)]` macro
//! generates `from_value` field-by-field for structs and by variant name for
//! unit enums (`#[serde(skip)]` fields are restored via `Default`).
//!
//! Only the API surface this workspace uses is provided.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value: the universal serialization target of this stand-in.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Integers (kept exact; rendered without a decimal point).
    Int(i128),
    /// Floating-point numbers.
    Float(f64),
    /// JSON strings.
    String(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` into the JSON-like value model.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::Int(i128::try_from(*self).unwrap_or(i128::MAX))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )+};
}

impl_serialize_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

impl Value {
    /// A short name for the value's JSON type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (accepts both `Int` and `Float`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entry list, if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a key in an `Object` (linear scan; objects here are small).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Deserialization error: a human-readable description of the first mismatch
/// between the JSON value and the target type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }

    /// A type-mismatch error (`expected X, found Y`).
    pub fn expected(what: &str, found: &Value) -> DeError {
        DeError(format!("expected {what}, found {}", found.type_name()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up a struct field in an object value, reporting a helpful error when
/// the value is not an object or the field is missing (used by the
/// `#[derive(Deserialize)]` expansion).
pub fn expect_field<'v>(value: &'v Value, field: &str, ty: &str) -> Result<&'v Value, DeError> {
    let entries = value
        .as_object()
        .ok_or_else(|| DeError::expected(&format!("object for struct `{ty}`"), value))?;
    entries
        .iter()
        .find(|(k, _)| k == field)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{field}` for struct `{ty}`")))
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Converts the JSON-like value model back into `Self`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let i = value
                    .as_i128()
                    .ok_or_else(|| DeError::expected("integer", value))?;
                <$t>::try_from(i).map_err(|_| {
                    DeError::custom(format!(
                        "integer {i} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_deserialize_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::expected("number", value))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::expected("boolean", value))
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", value))
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::expected("string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom(format!(
                "expected single-character string, found {s:?}"
            ))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:literal, $($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError::expected("array", value))?;
                if items.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected array of length {}, found {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_deserialize_tuple!(
    (1, A: 0),
    (2, A: 0, B: 1),
    (3, A: 0, B: 1, C: 2),
    (4, A: 0, B: 1, C: 2, D: 3)
);
