//! Derive macro for the offline `serde` stand-in.
//!
//! Parses the derive input token stream by hand (no `syn`/`quote` available in
//! this hermetic workspace) and generates a `Serialize::to_value` impl:
//!
//! * named-field structs serialize to a JSON object, skipping `#[serde(skip)]`
//!   fields;
//! * one-field tuple structs (newtypes) serialize transparently as their inner
//!   value; longer tuple structs as an array;
//! * enums serialize each variant as its name string (data-carrying variants
//!   also serialize as just the variant name — none of this workspace's types
//!   need payload serialization).
//!
//! Generics are not supported; deriving on a generic type is a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for plain (non-generic) structs and enums.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    match generate(&tokens) {
        Ok(code) => code.parse().expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn generate(tokens: &[TokenTree]) -> Result<String, String> {
    let mut i = 0;
    skip_attributes_and_visibility(tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("#[derive(Serialize)] on generic type `{name}` is not supported by the offline serde stand-in"));
    }

    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                named_struct_body(&name, &collect(g.stream()))?
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                tuple_struct_body(&collect(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                "::serde::Value::Object(::std::vec::Vec::new())".to_string()
            }
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                enum_body(&name, &collect(g.stream()))?
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        },
        other => return Err(format!("cannot derive Serialize for `{other}` items")),
    };

    Ok(format!(
        "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n"
    ))
}

fn collect(stream: TokenStream) -> Vec<TokenTree> {
    stream.into_iter().collect()
}

/// Advances past outer attributes (`#[...]`, including doc comments) and an
/// optional `pub` / `pub(...)` visibility qualifier.
fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Consumes one attribute starting at `#` and reports whether it is
/// `#[serde(skip)]` (or any `#[serde(...)]` list containing `skip`).
fn attribute_is_serde_skip(tokens: &[TokenTree], i: &mut usize) -> bool {
    debug_assert!(matches!(&tokens[*i], TokenTree::Punct(p) if p.as_char() == '#'));
    *i += 1;
    let Some(TokenTree::Group(outer)) = tokens.get(*i) else {
        return false;
    };
    *i += 1;
    let inner = collect(outer.stream());
    let is_serde = matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
    if !is_serde {
        return false;
    }
    inner.iter().any(|t| match t {
        TokenTree::Group(g) => collect(g.stream())
            .iter()
            .any(|t| matches!(t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    })
}

/// Skips tokens up to and including the next comma at angle-bracket depth 0.
fn skip_past_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        *i += 1;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth <= 0 => return,
                _ => {}
            }
        }
    }
}

fn named_struct_body(name: &str, tokens: &[TokenTree]) -> Result<String, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            skip |= attribute_is_serde_skip(tokens, &mut i);
        }
        if i >= tokens.len() {
            break;
        }
        skip_attributes_and_visibility(tokens, &mut i);
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name in `{name}`, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{field}`, found {other:?}"
                ))
            }
        }
        skip_past_top_level_comma(tokens, &mut i);
        if !skip {
            fields.push(field);
        }
    }

    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!("(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))")
        })
        .collect();
    Ok(format!(
        "::serde::Value::Object(::std::vec::Vec::from([{}]))",
        entries.join(", ")
    ))
}

fn tuple_struct_body(tokens: &[TokenTree]) -> String {
    // Count the top-level type slots of the tuple struct.
    let mut slots = 0usize;
    let mut i = 0;
    while i < tokens.len() {
        slots += 1;
        skip_past_top_level_comma(tokens, &mut i);
    }
    if slots == 1 {
        // Newtype: serialize transparently as the inner value.
        return "::serde::Serialize::to_value(&self.0)".to_string();
    }
    let entries: Vec<String> = (0..slots)
        .map(|idx| format!("::serde::Serialize::to_value(&self.{idx})"))
        .collect();
    format!(
        "::serde::Value::Array(::std::vec::Vec::from([{}]))",
        entries.join(", ")
    )
}

fn enum_body(name: &str, tokens: &[TokenTree]) -> Result<String, String> {
    let mut arms = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!(
                    "expected variant name in `{name}`, found {other:?}"
                ))
            }
        };
        i += 1;
        let pattern = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                format!("{name}::{variant}(..)")
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                format!("{name}::{variant}{{..}}")
            }
            _ => format!("{name}::{variant}"),
        };
        skip_past_top_level_comma(tokens, &mut i);
        arms.push(format!(
            "{pattern} => ::serde::Value::String(::std::string::String::from({variant:?}))"
        ));
    }
    if arms.is_empty() {
        return Ok("match *self {}".to_string());
    }
    Ok(format!("match self {{ {} }}", arms.join(", ")))
}
