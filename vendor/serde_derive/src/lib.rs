//! Derive macros for the offline `serde` stand-in.
//!
//! Parses the derive input token stream by hand (no `syn`/`quote` available in
//! this hermetic workspace) and generates `Serialize::to_value` /
//! `Deserialize::from_value` impls:
//!
//! * named-field structs (de)serialize to/from a JSON object; `#[serde(skip)]`
//!   fields are omitted on the way out and restored via `Default` on the way
//!   back in;
//! * one-field tuple structs (newtypes) (de)serialize transparently as their
//!   inner value; longer tuple structs as an array;
//! * enums (de)serialize each variant as its name string (data-carrying
//!   variants also serialize as just the variant name — none of this
//!   workspace's types need payload serialization; deserialization is only
//!   generated for all-unit-variant enums).
//!
//! Generics are not supported; deriving on a generic type is a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for plain (non-generic) structs and enums.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    match generate(&tokens) {
        Ok(code) => code.parse().expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Derives `serde::Deserialize` for plain (non-generic) structs and unit enums.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    match generate_de(&tokens) {
        Ok(code) => code.parse().expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn generate(tokens: &[TokenTree]) -> Result<String, String> {
    let mut i = 0;
    skip_attributes_and_visibility(tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("#[derive(Serialize)] on generic type `{name}` is not supported by the offline serde stand-in"));
    }

    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                named_struct_body(&name, &collect(g.stream()))?
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                tuple_struct_body(&collect(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                "::serde::Value::Object(::std::vec::Vec::new())".to_string()
            }
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                enum_body(&name, &collect(g.stream()))?
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        },
        other => return Err(format!("cannot derive Serialize for `{other}` items")),
    };

    Ok(format!(
        "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n"
    ))
}

fn collect(stream: TokenStream) -> Vec<TokenTree> {
    stream.into_iter().collect()
}

/// Advances past outer attributes (`#[...]`, including doc comments) and an
/// optional `pub` / `pub(...)` visibility qualifier.
fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Consumes one attribute starting at `#` and reports whether it is
/// `#[serde(skip)]` (or any `#[serde(...)]` list containing `skip`).
fn attribute_is_serde_skip(tokens: &[TokenTree], i: &mut usize) -> bool {
    debug_assert!(matches!(&tokens[*i], TokenTree::Punct(p) if p.as_char() == '#'));
    *i += 1;
    let Some(TokenTree::Group(outer)) = tokens.get(*i) else {
        return false;
    };
    *i += 1;
    let inner = collect(outer.stream());
    let is_serde = matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
    if !is_serde {
        return false;
    }
    inner.iter().any(|t| match t {
        TokenTree::Group(g) => collect(g.stream())
            .iter()
            .any(|t| matches!(t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    })
}

/// Skips tokens up to and including the next comma at angle-bracket depth 0.
fn skip_past_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        *i += 1;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth <= 0 => return,
                _ => {}
            }
        }
    }
}

/// Parses the fields of a named struct into `(name, is_serde_skip)` pairs.
fn parse_named_fields(name: &str, tokens: &[TokenTree]) -> Result<Vec<(String, bool)>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            skip |= attribute_is_serde_skip(tokens, &mut i);
        }
        if i >= tokens.len() {
            break;
        }
        skip_attributes_and_visibility(tokens, &mut i);
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name in `{name}`, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{field}`, found {other:?}"
                ))
            }
        }
        skip_past_top_level_comma(tokens, &mut i);
        fields.push((field, skip));
    }
    Ok(fields)
}

fn named_struct_body(name: &str, tokens: &[TokenTree]) -> Result<String, String> {
    let entries: Vec<String> = parse_named_fields(name, tokens)?
        .into_iter()
        .filter(|(_, skip)| !skip)
        .map(|(f, _)| {
            format!("(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))")
        })
        .collect();
    Ok(format!(
        "::serde::Value::Object(::std::vec::Vec::from([{}]))",
        entries.join(", ")
    ))
}

fn tuple_struct_body(tokens: &[TokenTree]) -> String {
    // Count the top-level type slots of the tuple struct.
    let mut slots = 0usize;
    let mut i = 0;
    while i < tokens.len() {
        slots += 1;
        skip_past_top_level_comma(tokens, &mut i);
    }
    if slots == 1 {
        // Newtype: serialize transparently as the inner value.
        return "::serde::Serialize::to_value(&self.0)".to_string();
    }
    let entries: Vec<String> = (0..slots)
        .map(|idx| format!("::serde::Serialize::to_value(&self.{idx})"))
        .collect();
    format!(
        "::serde::Value::Array(::std::vec::Vec::from([{}]))",
        entries.join(", ")
    )
}

fn enum_body(name: &str, tokens: &[TokenTree]) -> Result<String, String> {
    let mut arms = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!(
                    "expected variant name in `{name}`, found {other:?}"
                ))
            }
        };
        i += 1;
        let pattern = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                format!("{name}::{variant}(..)")
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                format!("{name}::{variant}{{..}}")
            }
            _ => format!("{name}::{variant}"),
        };
        skip_past_top_level_comma(tokens, &mut i);
        arms.push(format!(
            "{pattern} => ::serde::Value::String(::std::string::String::from({variant:?}))"
        ));
    }
    if arms.is_empty() {
        return Ok("match *self {}".to_string());
    }
    Ok(format!("match self {{ {} }}", arms.join(", ")))
}

fn generate_de(tokens: &[TokenTree]) -> Result<String, String> {
    let mut i = 0;
    skip_attributes_and_visibility(tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("#[derive(Deserialize)] on generic type `{name}` is not supported by the offline serde stand-in"));
    }

    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                named_struct_de_body(&name, &collect(g.stream()))?
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                tuple_struct_de_body(&name, &collect(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                format!("::std::result::Result::Ok({name})")
            }
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                enum_de_body(&name, &collect(g.stream()))?
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        },
        other => return Err(format!("cannot derive Deserialize for `{other}` items")),
    };

    Ok(format!(
        "impl ::serde::Deserialize for {name} {{\n    fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n        {body}\n    }}\n}}\n"
    ))
}

fn named_struct_de_body(name: &str, tokens: &[TokenTree]) -> Result<String, String> {
    let inits: Vec<String> = parse_named_fields(name, tokens)?
        .into_iter()
        .map(|(f, skip)| {
            if skip {
                format!("{f}: ::std::default::Default::default()")
            } else {
                format!(
                    "{f}: ::serde::Deserialize::from_value(::serde::expect_field(value, {f:?}, {name:?})?)?"
                )
            }
        })
        .collect();
    Ok(format!(
        "::std::result::Result::Ok({name} {{ {} }})",
        inits.join(", ")
    ))
}

fn tuple_struct_de_body(name: &str, tokens: &[TokenTree]) -> String {
    let mut slots = 0usize;
    let mut i = 0;
    while i < tokens.len() {
        slots += 1;
        skip_past_top_level_comma(tokens, &mut i);
    }
    if slots == 1 {
        // Newtype: deserialize transparently from the inner value.
        return format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"
        );
    }
    let elems: Vec<String> = (0..slots)
        .map(|idx| format!("::serde::Deserialize::from_value(&items[{idx}])?"))
        .collect();
    format!(
        "let items = value.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", value))?;\n        if items.len() != {slots} {{ return ::std::result::Result::Err(::serde::DeError::custom(format!(\"expected array of length {slots} for `{name}`, found {{}}\", items.len()))); }}\n        ::std::result::Result::Ok({name}({}))",
        elems.join(", ")
    )
}

fn enum_de_body(name: &str, tokens: &[TokenTree]) -> Result<String, String> {
    let mut arms = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!(
                    "expected variant name in `{name}`, found {other:?}"
                ))
            }
        };
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
            return Err(format!(
                "#[derive(Deserialize)] on enum `{name}` requires unit variants only (variant `{variant}` carries data)"
            ));
        }
        skip_past_top_level_comma(tokens, &mut i);
        arms.push(format!(
            "{variant:?} => ::std::result::Result::Ok({name}::{variant})"
        ));
    }
    Ok(format!(
        "let tag = value.as_str().ok_or_else(|| ::serde::DeError::expected(\"string (variant of `{name}`)\", value))?;\n        match tag {{ {}, other => ::std::result::Result::Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` of enum `{name}`\"))) }}",
        arms.join(", ")
    ))
}
