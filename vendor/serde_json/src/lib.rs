//! Offline stand-in for `serde_json`: renders the [`serde`] stand-in's
//! [`Value`] model as JSON text (compact or pretty, two-space
//! indent, RFC 8259 string escaping), and parses JSON text back into that
//! model ([`from_str`] / [`from_value`]) via a recursive-descent parser.
//!
//! Floats are rendered with Rust's shortest round-tripping formatting and
//! parsed with `str::parse::<f64>`, so a serialize → parse round trip is
//! bit-exact — the property the trace record/replay machinery relies on.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

pub use serde::Value as JsonValue;

/// Serialization or parse error. On the serialization side the stand-in's
/// value model is total, so the only failure mode is a non-finite float,
/// mirroring `serde_json`'s behaviour; parse errors carry a byte offset.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.to_string())
    }
}

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite float {x}")));
            }
            // Match serde_json: floats always carry a decimal point or exponent.
            let rendered = format!("{x}");
            out.push_str(&rendered);
            if !rendered.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            '[',
            ']',
            indent,
            level,
            write_value,
        )?,
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            '{',
            '}',
            indent,
            level,
            |out, (key, item), indent, level| {
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level)
            },
        )?,
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    level: usize,
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if len == 0 {
        out.push(close);
        return Ok(());
    }
    for (idx, item) in items.enumerate() {
        if idx > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, item, indent, level + 1)?;
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
    Ok(())
}

/// Parses JSON text and deserializes it into `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

/// Deserializes an already-parsed [`Value`] into `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Serializes a value into the [`Value`] model (infallible in this stand-in).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn consume_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal (expected `{literal}`)")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.consume_literal("null", Value::Null),
            Some(b't') => self.consume_literal("true", Value::Bool(true)),
            Some(b'f') => self.consume_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.error(&format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape sequence"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            // Combine UTF-16 surrogate pairs.
                            let code = if (0xd800..0xdc00).contains(&unit) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xdc00..0xe000).contains(&low) {
                                        return Err(self.error("unpaired surrogate"));
                                    }
                                    0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00)
                                } else {
                                    return Err(self.error("unpaired surrogate"));
                                }
                            } else {
                                unit
                            };
                            match char::from_u32(code) {
                                Some(ch) => out.push(ch),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.error("invalid escape character")),
                    }
                }
                c if c < 0x20 => return Err(self.error("control character in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let len = match c {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.error("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error("invalid number"))
        } else {
            // Integers that overflow i128 fall back to f64, as real serde_json
            // does for u64 overflow with arbitrary_precision off.
            text.parse::<i128>().map(Value::Int).or_else(|_| {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.error("invalid number"))
            })
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_objects() {
        let value = Value::Object(vec![
            ("name".to_string(), Value::String("m0".to_string())),
            (
                "counts".to_string(),
                Value::Array(vec![Value::Int(1), Value::Float(2.5)]),
            ),
        ]);
        let rendered = to_string_pretty(&value).unwrap();
        assert_eq!(
            rendered,
            "{\n  \"name\": \"m0\",\n  \"counts\": [\n    1,\n    2.5\n  ]\n}"
        );
    }

    #[test]
    fn compact_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&vec![1u64, 2]).unwrap(), "[1,2]");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn parses_scalars() {
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u64>(" 42 ").unwrap(), 42);
        assert_eq!(from_str::<i32>("-17").unwrap(), -17);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
        assert_eq!(
            from_str::<String>("\"a\\\"b\\n\\u00e9\"").unwrap(),
            "a\"b\né"
        );
    }

    #[test]
    fn parses_nested_containers() {
        let v: Vec<Vec<f64>> = from_str("[[1.0,2.5],[3.0]]").unwrap();
        assert_eq!(v, vec![vec![1.0, 2.5], vec![3.0]]);
        let value = from_str::<Value>("{\"a\":[1,{\"b\":null}]}").unwrap();
        assert_eq!(
            value
                .get("a")
                .and_then(|a| a.as_array())
                .map(<[Value]>::len),
            Some(2)
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<u8>("300").is_err());
    }

    #[test]
    fn float_round_trip_is_bit_exact() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e-300, 123_456_789.123_456_79, -0.0] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "round-trip of {x} via {text}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
        // A high surrogate followed by a non-low-surrogate escape is an error,
        // not an arithmetic underflow.
        assert!(from_str::<String>("\"\\ud800\\u0041\"").is_err());
        assert!(from_str::<String>("\"\\ud800\\ud800\"").is_err());
    }

    #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
    enum Mode {
        Fast,
        Slow,
    }

    #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
    struct Inner(u32);

    #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
    struct Outer {
        label: String,
        mode: Mode,
        inner: Inner,
        rows: Vec<Vec<f64>>,
        #[serde(skip)]
        cached: Option<u64>,
    }

    #[test]
    fn derived_structs_round_trip() {
        let outer = Outer {
            label: "campaign \"a\"".to_string(),
            mode: Mode::Slow,
            inner: Inner(7),
            rows: vec![vec![1.5, 2.0], vec![]],
            cached: Some(9),
        };
        let text = to_string(&outer).unwrap();
        let back: Outer = from_str(&text).unwrap();
        // `cached` is #[serde(skip)]: restored via Default, not the original.
        assert_eq!(back.cached, None);
        assert_eq!(back.label, outer.label);
        assert_eq!(back.mode, outer.mode);
        assert_eq!(back.inner, outer.inner);
        assert_eq!(back.rows, outer.rows);
        assert!(from_str::<Mode>("\"Sideways\"").is_err());
        assert!(from_str::<Outer>("{\"label\":\"x\"}").is_err());
    }
}
