//! Offline stand-in for `serde_json`: renders the [`serde`] stand-in's
//! [`Value`](serde::Value) model as JSON text (compact or pretty, two-space
//! indent, RFC 8259 string escaping).

use serde::{Serialize, Value};
use std::fmt;

pub use serde::Value as JsonValue;

/// Serialization error. The stand-in's value model is total, so the only
/// failure mode is a non-finite float, mirroring `serde_json`'s behaviour.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite float {x}")));
            }
            // Match serde_json: floats always carry a decimal point or exponent.
            let rendered = format!("{x}");
            out.push_str(&rendered);
            if !rendered.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            '[',
            ']',
            indent,
            level,
            write_value,
        )?,
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            '{',
            '}',
            indent,
            level,
            |out, (key, item), indent, level| {
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level)
            },
        )?,
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    level: usize,
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if len == 0 {
        out.push(close);
        return Ok(());
    }
    for (idx, item) in items.enumerate() {
        if idx > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, item, indent, level + 1)?;
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
    Ok(())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_objects() {
        let value = Value::Object(vec![
            ("name".to_string(), Value::String("m0".to_string())),
            (
                "counts".to_string(),
                Value::Array(vec![Value::Int(1), Value::Float(2.5)]),
            ),
        ]);
        let rendered = to_string_pretty(&value).unwrap();
        assert_eq!(
            rendered,
            "{\n  \"name\": \"m0\",\n  \"counts\": [\n    1,\n    2.5\n  ]\n}"
        );
    }

    #[test]
    fn compact_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&vec![1u64, 2]).unwrap(), "[1,2]");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
    }
}
